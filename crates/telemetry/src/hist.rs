//! Deterministic log-bucketed histograms.
//!
//! An HDR-style layout: values are binned into power-of-two octaves,
//! each split into `2^SUB_BUCKET_BITS` linear sub-buckets, so the
//! relative quantization error is bounded by `2^-SUB_BUCKET_BITS`
//! (6.25 % at the default 4 bits) while the whole `u64` range fits in
//! under a thousand buckets. Everything is integer arithmetic on exact
//! counts: two histograms merge by adding bucket counts (commutative
//! and associative), which is what lets worker threads record into a
//! shared recorder without breaking byte-identical reports.
//!
//! Quantiles are derived exactly from the bucket counts — the same
//! counts always yield the same `p50`/`p99`, independent of record
//! order, platform, or thread count.

use crate::json::Value;
use crate::parse::ParseError;
use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BUCKET_BITS` linear buckets.
pub const SUB_BUCKET_BITS: u32 = 4;

const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
const SUB_MASK: u64 = SUB_BUCKETS - 1;

/// A deterministic log-bucketed histogram over `u64` samples.
///
/// Tracks the exact count, (saturating) sum, minimum, and maximum
/// alongside the bucket counts; [`Histogram::quantile`] interpolates
/// nothing — it walks the buckets and returns the covering bucket's
/// upper bound, clamped to the observed `[min, max]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sparse bucket index → sample count.
    buckets: BTreeMap<u32, u64>,
}

/// The bucket index a value falls into. Values below `2^SUB_BUCKET_BITS`
/// get exact singleton buckets; above that, index = octave · sub-buckets
/// + sub-bucket, contiguous across octave boundaries.
pub fn bucket_index(v: u64) -> u32 {
    if v < SUB_BUCKETS {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BUCKET_BITS + 1;
    let sub = ((v >> (msb - SUB_BUCKET_BITS)) & SUB_MASK) as u32;
    (octave << SUB_BUCKET_BITS) + sub
}

/// Smallest value mapping to `index` (inverse of [`bucket_index`]).
pub fn bucket_low(index: u32) -> u64 {
    let octave = u64::from(index >> SUB_BUCKET_BITS);
    let sub = u64::from(index) & SUB_MASK;
    if octave == 0 {
        sub
    } else {
        (SUB_BUCKETS + sub) << (octave - 1)
    }
}

/// Largest value mapping to `index` (inclusive).
pub fn bucket_high(index: u32) -> u64 {
    if index >= bucket_index(u64::MAX) {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one step.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        *self.buckets.entry(bucket_index(v)).or_insert(0) += n;
    }

    /// Adds another histogram's samples into this one. Merging is
    /// commutative and associative, so absorb order cannot change the
    /// result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The exact-from-buckets quantile: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th sample, clamped to the observed
    /// `[min, max]`. Returns 0 for an empty histogram; `q` outside
    /// `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_high(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The sparse `(bucket index, count)` pairs in index order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (i, n))
    }

    /// Deterministic JSON object: `count`, `sum`, `min`, `max`, `p50`,
    /// `p90`, `p99`, and the sparse `buckets` as `[index, count]` pairs.
    /// The quantiles are derived (and rederived on load); the bucket
    /// counts are the source of truth.
    pub fn to_value(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .map(|(&i, &n)| Value::Array(vec![Value::from(u64::from(i)), Value::from(n)]))
            .collect::<Vec<_>>();
        Value::object(vec![
            ("count", Value::from(self.count)),
            ("sum", Value::from(self.sum)),
            ("min", Value::from(self.min)),
            ("max", Value::from(self.max)),
            ("p50", Value::from(self.p50())),
            ("p90", Value::from(self.p90())),
            ("p99", Value::from(self.p99())),
            ("buckets", Value::Array(buckets)),
        ])
    }

    /// Rebuilds a histogram from [`Histogram::to_value`] output.
    ///
    /// # Errors
    ///
    /// [`ParseError`] naming the missing or mistyped field.
    pub fn from_value(v: &Value) -> Result<Histogram, ParseError> {
        let schema = |detail: &str| ParseError { at: 0, detail: format!("histogram: {detail}") };
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| schema(&format!("{name} must be a u64")))
        };
        let mut buckets = BTreeMap::new();
        for pair in v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| schema("buckets must be an array"))?
        {
            let items = pair.as_array().ok_or_else(|| schema("bucket must be [index, count]"))?;
            let (idx, n) = match items {
                [i, n] => (
                    i.as_u64().ok_or_else(|| schema("bucket index must be a u64"))?,
                    n.as_u64().ok_or_else(|| schema("bucket count must be a u64"))?,
                ),
                _ => return Err(schema("bucket must be [index, count]")),
            };
            let idx = u32::try_from(idx)
                .ok()
                .filter(|&i| i <= bucket_index(u64::MAX))
                .ok_or_else(|| schema("bucket index out of range"))?;
            *buckets.entry(idx).or_insert(0) += n;
        }
        Ok(Histogram {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_low(v as u32), v);
            assert_eq!(bucket_high(v as u32), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let top = bucket_index(u64::MAX);
        for i in 0..top {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap after bucket {i}");
        }
        assert_eq!(bucket_high(top), u64::MAX);
    }

    #[test]
    fn every_value_lands_in_its_own_bucket() {
        for v in [0, 1, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX / 2, u64::MAX - 1]
        {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "value {v} outside bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), bucket_index(u64::MAX - 1));
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 12_345, 1 << 33, 987_654_321] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                (width as f64) <= (bucket_low(i) as f64) / (SUB_BUCKETS as f64) + 1.0,
                "bucket {i} too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_exact_from_counts() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        // p50 covers the 50th sample: value 50 lives in bucket [48, 51].
        let p50 = h.p50();
        assert!((48..=55).contains(&p50), "p50 was {p50}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), bucket_high(bucket_index(1)).clamp(1, 100));
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn merge_is_commutative_and_matches_sequential() {
        let mut seq = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 99, 4_000, 12, 1 << 30, 7] {
            seq.record(v);
        }
        for v in [3u64, 99, 4_000] {
            a.record(v);
        }
        for v in [12u64, 1 << 30, 7] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, seq);
        assert_eq!(ba, seq);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut h = Histogram::new();
        h.record(42);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
        h.merge(&Histogram::new());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn saturating_sum_never_panics() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn roundtrips_through_value() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 500, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_value(&h.to_value()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_value().render(), h.to_value().render());
    }

    #[test]
    fn from_value_rejects_malformed() {
        assert!(Histogram::from_value(&Value::Null).is_err());
        let missing = Value::object(vec![("count", Value::from(1u64))]);
        assert!(Histogram::from_value(&missing).is_err());
        let bad_bucket = Value::object(vec![
            ("count", Value::from(1u64)),
            ("sum", Value::from(1u64)),
            ("min", Value::from(1u64)),
            ("max", Value::from(1u64)),
            ("buckets", Value::Array(vec![Value::from(3u64)])),
        ]);
        assert!(Histogram::from_value(&bad_bucket).is_err());
    }
}
