//! A minimal, deterministic JSON document builder.
//!
//! The workspace deliberately carries no serde_json; the handful of
//! machine-readable reports it emits (`BENCH_sram.json`, the campaign
//! report) need exact, reproducible bytes more than they need a full
//! serializer. [`Value`] preserves object key insertion order and
//! renders floats through Rust's shortest-roundtrip formatter, so the
//! same document always renders to the same bytes.

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as an indented multi-line JSON string.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trip repr; force a decimal point so
                    // the value stays a float on re-parse.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::UInt(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::UInt(n as u64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::UInt(n as u64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::from(true).render(), "true");
        assert_eq!(Value::from(42u64).render(), "42");
        assert_eq!(Value::from(-3i64).render(), "-3");
        assert_eq!(Value::from(0.5).render(), "0.5");
        assert_eq!(Value::from(2.0).render(), "2.0", "floats keep a decimal point");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        // `{x}` would print `NaN` / `inf` / `-inf` — none of which is
        // JSON. Every non-finite value must collapse to `null`, in both
        // compact and pretty renderings, at any nesting depth.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Value::Float(x).render(), "null");
            let doc = Value::object(vec![("v", Value::Float(x))]);
            assert_eq!(doc.render(), r#"{"v":null}"#);
            assert!(doc.render_pretty().contains("\"v\": null"));
        }
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Value::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Value::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = Value::object(vec![("z", Value::from(1u64)), ("a", Value::from(2u64))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Value::object(vec![
            ("name", Value::from("x")),
            ("items", Value::Array(vec![Value::from(1u64), Value::from(2u64)])),
            ("empty", Value::Array(vec![])),
        ]);
        let a = v.render_pretty();
        assert_eq!(a, v.render_pretty());
        assert!(a.contains("\"items\": [\n"));
        assert!(a.contains("\"empty\": []"));
        assert!(a.ends_with('\n'));
    }
}
