//! Deterministic structured telemetry for the Volt Boot stack.
//!
//! Attack campaigns need per-step timings, counters, and an event log
//! that are **byte-identical across runs with the same seed** — a hard
//! requirement for the campaign report, and one wall-clock timestamps
//! can never meet. This crate therefore records against a *virtual*
//! clock: simulated components advance it by their modelled durations
//! (a 500 ms power-off interval advances it 500 ms, a `RAMINDEX` beat
//! advances it a few hundred nanoseconds), so span durations are exact
//! functions of what the simulation did, not of host scheduling.
//!
//! The API is a cheap cloneable handle, [`Recorder`]; a disabled
//! recorder ([`Recorder::disabled`]) makes every operation a no-op so
//! instrumented hot paths cost nothing when nobody is listening.
//!
//! ```rust
//! use voltboot_telemetry::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span("power-cycle");
//!     rec.advance(500_000_000); // the modelled 500 ms off interval
//!     rec.incr("rails_held", 1);
//! }
//! assert_eq!(rec.counter("rails_held"), 1);
//! assert_eq!(rec.timings()["power-cycle"].total_ns, 500_000_000);
//! ```
//!
//! JSON export is hand-rolled ([`json`]): the workspace intentionally
//! carries no serde_json, and deterministic key ordering matters more
//! than generality here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod parse;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Accumulated timing of one named span: how many times it ran and the
/// total virtual nanoseconds spent inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepTiming {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total virtual nanoseconds across those spans.
    pub total_ns: u64,
}

/// One timestamped event in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// Event name, e.g. `"fault.brownout"`.
    pub name: String,
    /// Human-readable detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct Inner {
    clock_ns: u64,
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, StepTiming>,
    events: Vec<EventRecord>,
}

/// A cheap cloneable telemetry sink with a virtual clock.
///
/// Clones share the same underlying store, so a recorder can be handed
/// across crate layers (attack → SoC → PDN → SRAM engine) and every
/// layer contributes to one report. Counter increments are commutative,
/// which keeps totals deterministic even when arrays resolve on worker
/// threads.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// Creates an enabled recorder with the virtual clock at zero.
    pub fn new() -> Self {
        Recorder { inner: Some(Arc::new(Mutex::new(Inner::default()))) }
    }

    /// A recorder that drops everything. All operations are no-ops.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        match &self.inner {
            Some(inner) => f(&mut inner.lock().expect("telemetry store poisoned")),
            None => R::default(),
        }
    }

    /// Advances the virtual clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.with(|i| i.clock_ns = i.clock_ns.saturating_add(ns));
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.with(|i| i.clock_ns)
    }

    /// Adds `by` to the named counter.
    pub fn incr(&self, name: &str, by: u64) {
        self.with(|i| {
            *i.counters.entry(name.to_string()).or_insert(0) += by;
        });
    }

    /// Reads one counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|i| i.counters.get(name).copied().unwrap_or(0))
    }

    /// Appends a timestamped event to the log.
    pub fn event(&self, name: &str, detail: &str) {
        self.with(|i| {
            let at_ns = i.clock_ns;
            i.events.push(EventRecord {
                at_ns,
                name: name.to_string(),
                detail: detail.to_string(),
            });
        });
    }

    /// Opens a named span; the span records its virtual duration into
    /// the timing table when dropped (or explicitly [`Span::end`]ed).
    pub fn span(&self, name: &str) -> Span {
        Span { rec: self.clone(), name: name.to_string(), start_ns: self.now_ns(), open: true }
    }

    /// A fresh, independent sub-recorder: its own store, virtual clock at
    /// zero, enabled exactly when `self` is. A parallel campaign hands
    /// one fork to each repetition so workers never contend on (or
    /// interleave into) the parent store; [`Recorder::absorb`] merges the
    /// forks back in deterministic order.
    pub fn fork(&self) -> Recorder {
        match &self.inner {
            Some(_) => Recorder::new(),
            None => Recorder::disabled(),
        }
    }

    /// Merges a forked sub-recorder into this one as if everything the
    /// fork recorded had happened *now*, sequentially: the fork's events
    /// are appended with their timestamps shifted by this recorder's
    /// current clock, counters and span timings are added (both are
    /// commutative), and the clock advances by the fork's total elapsed
    /// time. Absorbing forks in the order their work would have run
    /// sequentially reproduces the sequential recorder's export
    /// byte-for-byte — the invariant the parallel campaign scheduler's
    /// byte-identical reports rest on.
    ///
    /// Span *ordering* is deterministic by construction: timings live in
    /// a name-keyed [`BTreeMap`], so merge order cannot reorder the
    /// export; only event timestamps depend on absorb order.
    pub fn absorb(&self, sub: &Recorder) {
        if sub.inner.is_none() {
            return;
        }
        let sub_clock = sub.now_ns();
        let counters = sub.counters();
        let timings = sub.timings();
        let events = sub.events();
        self.with(|i| {
            let base = i.clock_ns;
            for e in events {
                i.events.push(EventRecord {
                    at_ns: base.saturating_add(e.at_ns),
                    name: e.name,
                    detail: e.detail,
                });
            }
            for (k, v) in counters {
                *i.counters.entry(k).or_insert(0) += v;
            }
            for (k, t) in timings {
                let slot = i.timings.entry(k).or_default();
                slot.count += t.count;
                slot.total_ns += t.total_ns;
            }
            i.clock_ns = base.saturating_add(sub_clock);
        });
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.with(|i| i.counters.clone())
    }

    /// Snapshot of all span timings.
    pub fn timings(&self) -> BTreeMap<String, StepTiming> {
        self.with(|i| i.timings.clone())
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<EventRecord> {
        self.with(|i| i.events.clone())
    }

    /// The whole store as a deterministic [`json::Value`] object with
    /// `clock_ns`, `counters`, `timings`, and `events` keys.
    pub fn to_value(&self) -> json::Value {
        let counters =
            self.counters().into_iter().map(|(k, v)| (k, json::Value::from(v))).collect::<Vec<_>>();
        let timings = self
            .timings()
            .into_iter()
            .map(|(k, t)| {
                let obj = json::Value::object(vec![
                    ("count", json::Value::from(t.count)),
                    ("total_ns", json::Value::from(t.total_ns)),
                ]);
                (k, obj)
            })
            .collect::<Vec<_>>();
        let events = self
            .events()
            .into_iter()
            .map(|e| {
                json::Value::object(vec![
                    ("at_ns", json::Value::from(e.at_ns)),
                    ("name", json::Value::from(e.name)),
                    ("detail", json::Value::from(e.detail)),
                ])
            })
            .collect::<Vec<_>>();
        json::Value::object(vec![
            ("clock_ns", json::Value::from(self.now_ns())),
            ("counters", json::Value::Object(counters)),
            ("timings", json::Value::Object(timings)),
            ("events", json::Value::Array(events)),
        ])
    }

    /// [`Recorder::to_value`] rendered as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Rebuilds a recorder from a [`Recorder::to_value`] export — the
    /// checkpoint/resume path. The restored recorder is enabled and
    /// carries the exported clock, counters, timings, and events, so
    /// `Recorder::from_value(&rec.to_value())` is observationally
    /// identical to `rec` (`to_value` round-trips byte-exactly).
    ///
    /// # Errors
    ///
    /// [`parse::ParseError`] naming the missing or mistyped field.
    pub fn from_value(v: &json::Value) -> Result<Recorder, parse::ParseError> {
        let schema = |detail: &str| parse::ParseError { at: 0, detail: detail.to_string() };
        let clock_ns = v
            .get("clock_ns")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| schema("recorder: clock_ns must be a u64"))?;
        let mut counters = BTreeMap::new();
        for (k, c) in v
            .get("counters")
            .and_then(json::Value::as_object)
            .ok_or_else(|| schema("recorder: counters must be an object"))?
        {
            let n =
                c.as_u64().ok_or_else(|| schema(&format!("recorder: counter {k} not a u64")))?;
            counters.insert(k.clone(), n);
        }
        let mut timings = BTreeMap::new();
        for (k, t) in v
            .get("timings")
            .and_then(json::Value::as_object)
            .ok_or_else(|| schema("recorder: timings must be an object"))?
        {
            let count = t
                .get("count")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema(&format!("recorder: timing {k} missing count")))?;
            let total_ns = t
                .get("total_ns")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema(&format!("recorder: timing {k} missing total_ns")))?;
            timings.insert(k.clone(), StepTiming { count, total_ns });
        }
        let mut events = Vec::new();
        for e in v
            .get("events")
            .and_then(json::Value::as_array)
            .ok_or_else(|| schema("recorder: events must be an array"))?
        {
            events.push(EventRecord {
                at_ns: e
                    .get("at_ns")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| schema("recorder: event missing at_ns"))?,
                name: e
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| schema("recorder: event missing name"))?
                    .to_string(),
                detail: e
                    .get("detail")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| schema("recorder: event missing detail"))?
                    .to_string(),
            });
        }
        Ok(Recorder {
            inner: Some(Arc::new(Mutex::new(Inner { clock_ns, counters, timings, events }))),
        })
    }
}

/// An open span handle; see [`Recorder::span`].
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: String,
    start_ns: u64,
    open: bool,
}

impl Span {
    /// Closes the span now (equivalent to dropping it).
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.open {
            return;
        }
        self.open = false;
        let elapsed = self.rec.now_ns().saturating_sub(self.start_ns);
        self.rec.with(|i| {
            let t = i.timings.entry(self.name.clone()).or_default();
            t.count += 1;
            t.total_ns += elapsed;
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.incr("x", 3);
        rec.advance(100);
        rec.event("e", "detail");
        let _ = rec.span("s");
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("x"), 0);
        assert_eq!(rec.now_ns(), 0);
        assert!(rec.events().is_empty());
        assert!(rec.timings().is_empty());
    }

    #[test]
    fn spans_measure_virtual_time() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("outer");
            rec.advance(50);
            {
                let _inner = rec.span("inner");
                rec.advance(25);
            }
        }
        let t = rec.timings();
        assert_eq!(t["outer"], StepTiming { count: 1, total_ns: 75 });
        assert_eq!(t["inner"], StepTiming { count: 1, total_ns: 25 });
    }

    #[test]
    fn repeated_spans_accumulate() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let s = rec.span("step");
            rec.advance(10);
            s.end();
        }
        assert_eq!(rec.timings()["step"], StepTiming { count: 3, total_ns: 30 });
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.incr("shared", 2);
        rec.incr("shared", 1);
        assert_eq!(rec.counter("shared"), 3);
    }

    #[test]
    fn events_are_timestamped() {
        let rec = Recorder::new();
        rec.advance(42);
        rec.event("fault", "rail brown-out");
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_ns, 42);
        assert_eq!(events[0].name, "fault");
    }

    #[test]
    fn recorder_roundtrips_through_value() {
        let rec = Recorder::new();
        rec.incr("reps", 3);
        rec.advance(40);
        rec.event("fault", "brown-out at rail VDD_CORE");
        {
            let s = rec.span("step");
            rec.advance(10);
            s.end();
        }
        let restored = Recorder::from_value(&rec.to_value()).unwrap();
        assert_eq!(restored.to_json(), rec.to_json(), "restore must be byte-exact");
        // The restored recorder keeps recording seamlessly.
        restored.incr("reps", 1);
        assert_eq!(restored.counter("reps"), 4);
        assert_eq!(restored.now_ns(), 50);
    }

    #[test]
    fn recorder_restore_rejects_malformed_exports() {
        assert!(Recorder::from_value(&json::Value::Null).is_err());
        let missing_clock = json::Value::object(vec![("counters", json::Value::Object(vec![]))]);
        assert!(Recorder::from_value(&missing_clock).is_err());
        let bad_counter = json::Value::object(vec![
            ("clock_ns", json::Value::from(0u64)),
            ("counters", json::Value::object(vec![("x", json::Value::from("nope"))])),
            ("timings", json::Value::Object(vec![])),
            ("events", json::Value::Array(vec![])),
        ]);
        let err = Recorder::from_value(&bad_counter).unwrap_err();
        assert!(err.detail.contains("counter x"), "{err}");
    }

    /// Records one "repetition" worth of activity onto `rec`, varying
    /// with `i` so reps are distinguishable in the merged export.
    fn record_rep(rec: &Recorder, i: u64) {
        let s = rec.span("rep");
        rec.incr("reps", 1);
        rec.incr(if i.is_multiple_of(2) { "even" } else { "odd" }, i + 1);
        rec.advance(10 + i);
        rec.event("tick", &format!("rep {i}"));
        rec.advance(5);
        s.end();
    }

    #[test]
    fn absorbing_forks_in_order_matches_sequential_recording() {
        let sequential = Recorder::new();
        sequential.advance(3); // a non-zero base clock, like a resumed run
        for i in 0..5 {
            record_rep(&sequential, i);
        }

        let merged = Recorder::new();
        merged.advance(3);
        // Forks recorded "out of order" (as parallel workers would), then
        // absorbed in rep order.
        let forks: Vec<Recorder> = (0..5).map(|_| merged.fork()).collect();
        for i in (0..5).rev() {
            record_rep(&forks[i as usize], i);
        }
        for fork in &forks {
            assert!(fork.now_ns() >= 15, "fork clocks start at zero and advance");
        }
        for fork in &forks {
            merged.absorb(fork);
        }

        assert_eq!(merged.to_json(), sequential.to_json(), "merge must be byte-identical");
        assert_eq!(merged.counter("reps"), 5);
        assert_eq!(merged.timings()["rep"].count, 5);
    }

    #[test]
    fn fork_of_disabled_recorder_is_disabled_and_absorb_is_inert() {
        let disabled = Recorder::disabled();
        assert!(!disabled.fork().is_enabled());

        // Absorbing into a disabled recorder is a no-op.
        let sub = Recorder::new();
        sub.incr("x", 1);
        disabled.absorb(&sub);
        assert_eq!(disabled.counter("x"), 0);

        // Absorbing a disabled fork changes nothing.
        let rec = Recorder::new();
        rec.incr("x", 2);
        rec.advance(7);
        let before = rec.to_json();
        rec.absorb(&Recorder::disabled());
        assert_eq!(rec.to_json(), before);
    }

    #[test]
    fn absorb_shifts_event_timestamps_by_the_base_clock() {
        let rec = Recorder::new();
        rec.advance(100);
        let sub = rec.fork();
        sub.advance(42);
        sub.event("e", "sub event");
        rec.absorb(&sub);
        assert_eq!(rec.events()[0].at_ns, 142);
        assert_eq!(rec.now_ns(), 142);
    }

    #[test]
    fn json_export_is_deterministic() {
        let build = || {
            let rec = Recorder::new();
            rec.incr("b", 2);
            rec.incr("a", 1);
            rec.advance(7);
            rec.event("e", "x");
            rec.to_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"counters\""));
        // BTreeMap ordering: "a" before "b".
        assert!(a.find("\"a\"").unwrap() < a.find("\"b\"").unwrap());
    }
}
