//! Deterministic structured telemetry for the Volt Boot stack.
//!
//! Attack campaigns need per-step timings, counters, and an event log
//! that are **byte-identical across runs with the same seed** — a hard
//! requirement for the campaign report, and one wall-clock timestamps
//! can never meet. This crate therefore records against a *virtual*
//! clock: simulated components advance it by their modelled durations
//! (a 500 ms power-off interval advances it 500 ms, a `RAMINDEX` beat
//! advances it a few hundred nanoseconds), so span durations are exact
//! functions of what the simulation did, not of host scheduling.
//!
//! The API is a cheap cloneable handle, [`Recorder`]; a disabled
//! recorder ([`Recorder::disabled`]) makes every operation a no-op so
//! instrumented hot paths cost nothing when nobody is listening.
//!
//! Beyond flat counters, the recorder keeps:
//!
//! * a **trace tree** — every [`Span`] gets a stable id, a parent link
//!   (the innermost span open at the time), and typed key/value
//!   attributes ([`AttrValue`]), retained up to a configurable cap
//!   with a dropped-span counter ([`export`] renders the tree as a
//!   Chrome trace or a flamegraph);
//! * **log-bucketed histograms** ([`hist::Histogram`]) with exact
//!   from-bucket quantiles, for latency/retry/decay distributions;
//! * **gauges** — last-written named values;
//! * **waveform channels** — `(virtual time, value)` samples, the
//!   oscilloscope view of the PDN model's rail voltages and currents.
//!
//! ```rust
//! use voltboot_telemetry::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let span = rec.span("power-cycle");
//!     span.attr("rail", "VDD_CORE");
//!     rec.advance(500_000_000); // the modelled 500 ms off interval
//!     rec.incr("rails_held", 1);
//!     rec.record("off_ns", 500_000_000);
//! }
//! assert_eq!(rec.counter("rails_held"), 1);
//! assert_eq!(rec.timings()["power-cycle"].total_ns, 500_000_000);
//! assert_eq!(rec.spans()[0].name, "power-cycle");
//! ```
//!
//! # The fork/absorb merge invariant
//!
//! [`Recorder::fork`] hands a parallel worker a fresh store with the
//! clock at zero; [`Recorder::absorb`] splices it back *as if the
//! fork's work had happened now, sequentially*: timestamps shift by the
//! parent clock, span ids shift by the parent's next id (parent links
//! move with them), events are re-sequenced, and counters, timings, and
//! histogram buckets add (all commutative). Absorbing forks in the
//! order their work would have run sequentially reproduces the
//! sequential recorder's export byte-for-byte — including the trace
//! tree, histograms, and waveforms.
//!
//! JSON export is hand-rolled ([`json`]): the workspace intentionally
//! carries no serde_json, and deterministic key ordering matters more
//! than generality here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod json;
pub mod parse;

use hist::Histogram;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default maximum number of retained trace-tree spans.
pub const DEFAULT_SPAN_CAP: usize = 65_536;
/// Default maximum number of retained samples per waveform channel.
pub const DEFAULT_WAVE_CAP: usize = 65_536;

/// Accumulated timing of one named span: how many times it ran, the
/// total virtual nanoseconds spent inside it, and the shortest/longest
/// single run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepTiming {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total virtual nanoseconds across those spans.
    pub total_ns: u64,
    /// Shortest single span (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single span (0 when `count == 0`).
    pub max_ns: u64,
}

impl StepTiming {
    /// Folds one completed span of `elapsed` nanoseconds in.
    fn record(&mut self, elapsed: u64) {
        if self.count == 0 {
            self.min_ns = elapsed;
            self.max_ns = elapsed;
        } else {
            self.min_ns = self.min_ns.min(elapsed);
            self.max_ns = self.max_ns.max(elapsed);
        }
        self.count += 1;
        self.total_ns += elapsed;
    }

    /// Adds another accumulator's spans in (commutative).
    fn merge(&mut self, other: &StepTiming) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns += other.total_ns;
    }
}

/// One timestamped event in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// Position in the totally-ordered log. Events that share a virtual
    /// timestamp (common: the clock only moves when a model advances
    /// it) stay in a stable, deterministic order under fork/absorb —
    /// the merge re-sequences, so `seq` is always the log index.
    pub seq: u64,
    /// Event name, e.g. `"fault.brownout"`.
    pub name: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
}

impl AttrValue {
    /// The attribute as a [`json::Value`].
    pub fn to_value(&self) -> json::Value {
        match self {
            AttrValue::Bool(b) => json::Value::Bool(*b),
            AttrValue::U64(n) => json::Value::UInt(*n),
            AttrValue::I64(n) => json::Value::Int(*n),
            AttrValue::F64(x) => json::Value::Float(*x),
            AttrValue::Str(s) => json::Value::Str(s.clone()),
        }
    }

    /// Rebuilds an attribute from the JSON shape `to_value` emits.
    pub fn from_value(v: &json::Value) -> Option<AttrValue> {
        match v {
            json::Value::Bool(b) => Some(AttrValue::Bool(*b)),
            json::Value::UInt(n) => Some(AttrValue::U64(*n)),
            json::Value::Int(n) => Some(AttrValue::I64(*n)),
            json::Value::Float(x) => Some(AttrValue::F64(*x)),
            json::Value::Str(s) => Some(AttrValue::Str(s.clone())),
            _ => None,
        }
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One node of the trace tree: a span's identity, position, extent on
/// the virtual clock, and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stable id, assigned in open order. Ids survive fork/absorb: the
    /// merge shifts a fork's ids past the parent's, so the merged tree
    /// is byte-identical to sequential recording.
    pub id: u64,
    /// Id of the innermost span that was open when this one opened
    /// (`None` for a root). A parent's id is always smaller than its
    /// children's.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Virtual open time.
    pub start_ns: u64,
    /// Virtual close time (`== start_ns` until the span closes).
    pub end_ns: u64,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// One waveform sample: a value on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveSample {
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// Sampled value (volts, amps — channel-defined).
    pub value: f64,
}

#[derive(Debug, Clone)]
struct Inner {
    clock_ns: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timings: BTreeMap<String, StepTiming>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<EventRecord>,
    next_event_seq: u64,
    spans: Vec<SpanRecord>,
    next_span_id: u64,
    open_spans: Vec<u64>,
    span_cap: usize,
    spans_dropped: u64,
    waves: BTreeMap<String, Vec<WaveSample>>,
    wave_cap: usize,
    waves_dropped: u64,
}

impl Inner {
    fn with_caps(span_cap: usize, wave_cap: usize) -> Self {
        Inner {
            clock_ns: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            timings: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
            next_event_seq: 0,
            spans: Vec::new(),
            next_span_id: 0,
            open_spans: Vec::new(),
            span_cap,
            spans_dropped: 0,
            waves: BTreeMap::new(),
            wave_cap,
            waves_dropped: 0,
        }
    }

    fn span_mut(&mut self, id: u64) -> Option<&mut SpanRecord> {
        // Spans are appended in id order (fork merges shift ids past the
        // parent's), so lookup is a binary search.
        let idx = self.spans.binary_search_by_key(&id, |n| n.id).ok()?;
        Some(&mut self.spans[idx])
    }
}

impl Default for Inner {
    fn default() -> Self {
        Inner::with_caps(DEFAULT_SPAN_CAP, DEFAULT_WAVE_CAP)
    }
}

/// A cheap cloneable telemetry sink with a virtual clock.
///
/// Clones share the same underlying store, so a recorder can be handed
/// across crate layers (attack → SoC → PDN → SRAM engine) and every
/// layer contributes to one report. Counter increments and histogram
/// records are commutative, which keeps totals deterministic even when
/// arrays resolve on worker threads.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// Creates an enabled recorder with the virtual clock at zero and
    /// default retention caps.
    pub fn new() -> Self {
        Recorder { inner: Some(Arc::new(Mutex::new(Inner::default()))) }
    }

    /// [`Recorder::new`] with explicit retention caps: at most
    /// `span_cap` trace-tree spans and `wave_cap` samples per waveform
    /// channel are kept; overflow is counted, not stored (earliest
    /// records win, so the caps cannot break the fork/absorb merge
    /// invariant). Forks inherit the caps.
    pub fn with_caps(span_cap: usize, wave_cap: usize) -> Self {
        Recorder { inner: Some(Arc::new(Mutex::new(Inner::with_caps(span_cap, wave_cap)))) }
    }

    /// A recorder that drops everything. All operations are no-ops.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        match &self.inner {
            Some(inner) => f(&mut inner.lock().expect("telemetry store poisoned")),
            None => R::default(),
        }
    }

    /// Advances the virtual clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.with(|i| i.clock_ns = i.clock_ns.saturating_add(ns));
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.with(|i| i.clock_ns)
    }

    /// Adds `by` to the named counter.
    pub fn incr(&self, name: &str, by: u64) {
        self.with(|i| {
            *i.counters.entry(name.to_string()).or_insert(0) += by;
        });
    }

    /// Reads one counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.with(|i| i.counters.get(name).copied().unwrap_or(0))
    }

    /// Sets a gauge to `value` (last write wins; a fork's writes win
    /// over the parent's at absorb, matching sequential order).
    pub fn gauge(&self, name: &str, value: f64) {
        self.with(|i| {
            i.gauges.insert(name.to_string(), value);
        });
    }

    /// Reads one gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.with(|i| i.gauges.get(name).copied())
    }

    /// Records `value` into the named log-bucketed histogram.
    /// Histogram merges are commutative, so worker threads may record
    /// concurrently without breaking determinism (unlike events/spans).
    pub fn record(&self, name: &str, value: u64) {
        self.with(|i| i.hists.entry(name.to_string()).or_default().record(value));
    }

    /// Snapshot of one histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with(|i| i.hists.get(name).cloned())
    }

    /// Appends a timestamped event to the log.
    pub fn event(&self, name: &str, detail: &str) {
        self.with(|i| {
            let at_ns = i.clock_ns;
            let seq = i.next_event_seq;
            i.next_event_seq += 1;
            i.events.push(EventRecord {
                at_ns,
                seq,
                name: name.to_string(),
                detail: detail.to_string(),
            });
        });
    }

    /// Appends a sample to the named waveform channel at the current
    /// virtual time.
    pub fn sample(&self, channel: &str, value: f64) {
        self.with(|i| {
            let at_ns = i.clock_ns;
            Self::push_sample(i, channel, WaveSample { at_ns, value });
        });
    }

    /// Appends a sample to the named waveform channel at an explicit
    /// virtual timestamp — how the PDN transient model records the
    /// intra-step droop/recovery shape before advancing the clock past
    /// the whole surge window.
    pub fn sample_at(&self, channel: &str, at_ns: u64, value: f64) {
        self.with(|i| Self::push_sample(i, channel, WaveSample { at_ns, value }));
    }

    fn push_sample(i: &mut Inner, channel: &str, sample: WaveSample) {
        let cap = i.wave_cap;
        let slot = i.waves.entry(channel.to_string()).or_default();
        if slot.len() < cap {
            slot.push(sample);
        } else {
            i.waves_dropped += 1;
        }
    }

    /// Opens a named span. The span records its virtual duration into
    /// the timing table when dropped (or explicitly [`Span::end`]ed)
    /// and becomes a node of the trace tree, parented under the
    /// innermost span currently open on this recorder.
    pub fn span(&self, name: &str) -> Span {
        let (id, start_ns) = self.with(|i| {
            let id = i.next_span_id;
            i.next_span_id += 1;
            let parent = i.open_spans.last().copied();
            let node = SpanRecord {
                id,
                parent,
                name: name.to_string(),
                start_ns: i.clock_ns,
                end_ns: i.clock_ns,
                attrs: Vec::new(),
            };
            if i.spans.len() < i.span_cap {
                i.spans.push(node);
            } else {
                i.spans_dropped += 1;
            }
            i.open_spans.push(id);
            (id, i.clock_ns)
        });
        Span { rec: self.clone(), name: name.to_string(), id, start_ns, open: true }
    }

    /// A fresh, independent sub-recorder: its own store, virtual clock at
    /// zero, enabled exactly when `self` is, with the same retention
    /// caps. A parallel campaign hands one fork to each repetition so
    /// workers never contend on (or interleave into) the parent store;
    /// [`Recorder::absorb`] merges the forks back in deterministic order.
    pub fn fork(&self) -> Recorder {
        match &self.inner {
            Some(inner) => {
                let (span_cap, wave_cap) = {
                    let i = inner.lock().expect("telemetry store poisoned");
                    (i.span_cap, i.wave_cap)
                };
                Recorder::with_caps(span_cap, wave_cap)
            }
            None => Recorder::disabled(),
        }
    }

    /// Merges a forked sub-recorder into this one as if everything the
    /// fork recorded had happened *now*, sequentially: the fork's
    /// events are appended with their timestamps shifted by this
    /// recorder's current clock and re-sequenced (so same-timestamp
    /// events keep a stable total order); its trace tree is spliced in
    /// with span ids shifted past this recorder's next id, parent links
    /// moving with them, and fork roots re-parented under the innermost
    /// span open here; counters, span timings, and histogram buckets
    /// are added (all commutative); gauges take the fork's (later)
    /// value; waveform samples shift like events; and the clock
    /// advances by the fork's total elapsed time. Retention caps
    /// re-apply during the splice, so capped merges still match a
    /// capped sequential run.
    ///
    /// Absorbing forks in the order their work would have run
    /// sequentially reproduces the sequential recorder's export
    /// byte-for-byte — the invariant the parallel campaign scheduler's
    /// byte-identical reports rest on.
    pub fn absorb(&self, sub: &Recorder) {
        let Some(sub_inner) = &sub.inner else { return };
        let snap = sub_inner.lock().expect("telemetry store poisoned").clone();
        self.with(|i| {
            let base = i.clock_ns;
            let id_shift = i.next_span_id;
            let reparent = i.open_spans.last().copied();
            for e in snap.events {
                let seq = i.next_event_seq;
                i.next_event_seq += 1;
                i.events.push(EventRecord {
                    at_ns: base.saturating_add(e.at_ns),
                    seq,
                    name: e.name,
                    detail: e.detail,
                });
            }
            for (k, v) in snap.counters {
                *i.counters.entry(k).or_insert(0) += v;
            }
            for (k, g) in snap.gauges {
                i.gauges.insert(k, g);
            }
            for (k, t) in snap.timings {
                i.timings.entry(k).or_default().merge(&t);
            }
            for (k, h) in snap.hists {
                i.hists.entry(k).or_default().merge(&h);
            }
            for node in snap.spans {
                let spliced = SpanRecord {
                    id: node.id + id_shift,
                    parent: node.parent.map(|p| p + id_shift).or(reparent),
                    name: node.name,
                    start_ns: base.saturating_add(node.start_ns),
                    end_ns: base.saturating_add(node.end_ns),
                    attrs: node.attrs,
                };
                if i.spans.len() < i.span_cap {
                    i.spans.push(spliced);
                } else {
                    i.spans_dropped += 1;
                }
            }
            i.next_span_id += snap.next_span_id;
            i.spans_dropped += snap.spans_dropped;
            let cap = i.wave_cap;
            let mut overflow = 0u64;
            for (chan, samples) in snap.waves {
                let slot = i.waves.entry(chan).or_default();
                for s in samples {
                    if slot.len() < cap {
                        slot.push(WaveSample {
                            at_ns: base.saturating_add(s.at_ns),
                            value: s.value,
                        });
                    } else {
                        overflow += 1;
                    }
                }
            }
            i.waves_dropped += overflow + snap.waves_dropped;
            i.clock_ns = base.saturating_add(snap.clock_ns);
        });
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.with(|i| i.counters.clone())
    }

    /// Snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.with(|i| i.gauges.clone())
    }

    /// Snapshot of all span timings.
    pub fn timings(&self) -> BTreeMap<String, StepTiming> {
        self.with(|i| i.timings.clone())
    }

    /// Snapshot of all histograms.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.with(|i| i.hists.clone())
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<EventRecord> {
        self.with(|i| i.events.clone())
    }

    /// Snapshot of the trace tree, in span-id order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.with(|i| i.spans.clone())
    }

    /// Spans discarded by the retention cap.
    pub fn spans_dropped(&self) -> u64 {
        self.with(|i| i.spans_dropped)
    }

    /// Snapshot of all waveform channels.
    pub fn waveforms(&self) -> BTreeMap<String, Vec<WaveSample>> {
        self.with(|i| i.waves.clone())
    }

    /// Waveform samples discarded by the per-channel retention cap.
    pub fn waves_dropped(&self) -> u64 {
        self.with(|i| i.waves_dropped)
    }

    /// The whole store as a deterministic [`json::Value`] object with
    /// `clock_ns`, `counters`, `gauges`, `timings`, `hists`, `events`,
    /// `spans`, and `waves` keys.
    pub fn to_value(&self) -> json::Value {
        let counters =
            self.counters().into_iter().map(|(k, v)| (k, json::Value::from(v))).collect::<Vec<_>>();
        let gauges =
            self.gauges().into_iter().map(|(k, v)| (k, json::Value::from(v))).collect::<Vec<_>>();
        let timings = self
            .timings()
            .into_iter()
            .map(|(k, t)| {
                let obj = json::Value::object(vec![
                    ("count", json::Value::from(t.count)),
                    ("total_ns", json::Value::from(t.total_ns)),
                    ("min_ns", json::Value::from(t.min_ns)),
                    ("max_ns", json::Value::from(t.max_ns)),
                ]);
                (k, obj)
            })
            .collect::<Vec<_>>();
        let hists =
            self.histograms().into_iter().map(|(k, h)| (k, h.to_value())).collect::<Vec<_>>();
        let events = self
            .events()
            .into_iter()
            .map(|e| {
                json::Value::object(vec![
                    ("at_ns", json::Value::from(e.at_ns)),
                    ("seq", json::Value::from(e.seq)),
                    ("name", json::Value::from(e.name)),
                    ("detail", json::Value::from(e.detail)),
                ])
            })
            .collect::<Vec<_>>();
        let nodes = self
            .spans()
            .into_iter()
            .map(|n| {
                let attrs = n.attrs.into_iter().map(|(k, v)| (k, v.to_value())).collect::<Vec<_>>();
                json::Value::object(vec![
                    ("id", json::Value::from(n.id)),
                    ("parent", n.parent.map(json::Value::from).unwrap_or(json::Value::Null)),
                    ("name", json::Value::from(n.name)),
                    ("start_ns", json::Value::from(n.start_ns)),
                    ("end_ns", json::Value::from(n.end_ns)),
                    ("attrs", json::Value::Object(attrs)),
                ])
            })
            .collect::<Vec<_>>();
        let (span_cap, wave_cap, next_span_id) =
            self.with(|i| (i.span_cap, i.wave_cap, i.next_span_id));
        let spans = json::Value::object(vec![
            ("cap", json::Value::from(span_cap)),
            ("dropped", json::Value::from(self.spans_dropped())),
            ("next_id", json::Value::from(next_span_id)),
            ("nodes", json::Value::Array(nodes)),
        ]);
        let channels = self
            .waveforms()
            .into_iter()
            .map(|(k, samples)| {
                let rows = samples
                    .into_iter()
                    .map(|s| {
                        json::Value::Array(vec![
                            json::Value::from(s.at_ns),
                            json::Value::from(s.value),
                        ])
                    })
                    .collect::<Vec<_>>();
                (k, json::Value::Array(rows))
            })
            .collect::<Vec<_>>();
        let waves = json::Value::object(vec![
            ("cap", json::Value::from(wave_cap)),
            ("dropped", json::Value::from(self.waves_dropped())),
            ("channels", json::Value::Object(channels)),
        ]);
        json::Value::object(vec![
            ("clock_ns", json::Value::from(self.now_ns())),
            ("counters", json::Value::Object(counters)),
            ("gauges", json::Value::Object(gauges)),
            ("timings", json::Value::Object(timings)),
            ("hists", json::Value::Object(hists)),
            ("events", json::Value::Array(events)),
            ("spans", spans),
            ("waves", waves),
        ])
    }

    /// [`Recorder::to_value`] rendered as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// Rebuilds a recorder from a [`Recorder::to_value`] export — the
    /// checkpoint/resume path. The restored recorder is enabled and
    /// carries the full exported state, so
    /// `Recorder::from_value(&rec.to_value())` is observationally
    /// identical to `rec` (`to_value` round-trips byte-exactly).
    ///
    /// Parsing is backward compatible with pre-trace-tree exports:
    /// missing `gauges`/`hists`/`spans`/`waves` sections default to
    /// empty, a timing without `min_ns`/`max_ns` gets the conservative
    /// bounds `[0, total_ns]`, and events without `seq` are numbered by
    /// log position.
    ///
    /// # Errors
    ///
    /// [`parse::ParseError`] naming the missing or mistyped field.
    pub fn from_value(v: &json::Value) -> Result<Recorder, parse::ParseError> {
        let schema = |detail: &str| parse::ParseError { at: 0, detail: detail.to_string() };
        let clock_ns = v
            .get("clock_ns")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| schema("recorder: clock_ns must be a u64"))?;
        let mut counters = BTreeMap::new();
        for (k, c) in v
            .get("counters")
            .and_then(json::Value::as_object)
            .ok_or_else(|| schema("recorder: counters must be an object"))?
        {
            let n =
                c.as_u64().ok_or_else(|| schema(&format!("recorder: counter {k} not a u64")))?;
            counters.insert(k.clone(), n);
        }
        let mut gauges = BTreeMap::new();
        if let Some(gv) = v.get("gauges") {
            for (k, g) in
                gv.as_object().ok_or_else(|| schema("recorder: gauges must be an object"))?
            {
                let x = g
                    .as_f64()
                    .ok_or_else(|| schema(&format!("recorder: gauge {k} not a number")))?;
                gauges.insert(k.clone(), x);
            }
        }
        let mut timings = BTreeMap::new();
        for (k, t) in v
            .get("timings")
            .and_then(json::Value::as_object)
            .ok_or_else(|| schema("recorder: timings must be an object"))?
        {
            let count = t
                .get("count")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema(&format!("recorder: timing {k} missing count")))?;
            let total_ns = t
                .get("total_ns")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema(&format!("recorder: timing {k} missing total_ns")))?;
            // Pre-min/max exports: the tightest bounds any mix of spans
            // summing to total_ns admits.
            let min_ns = t.get("min_ns").and_then(json::Value::as_u64).unwrap_or(0);
            let max_ns = t.get("max_ns").and_then(json::Value::as_u64).unwrap_or(total_ns);
            timings.insert(k.clone(), StepTiming { count, total_ns, min_ns, max_ns });
        }
        let mut hists = BTreeMap::new();
        if let Some(hv) = v.get("hists") {
            for (k, h) in
                hv.as_object().ok_or_else(|| schema("recorder: hists must be an object"))?
            {
                hists.insert(k.clone(), Histogram::from_value(h)?);
            }
        }
        let mut events = Vec::new();
        for (idx, e) in v
            .get("events")
            .and_then(json::Value::as_array)
            .ok_or_else(|| schema("recorder: events must be an array"))?
            .iter()
            .enumerate()
        {
            events.push(EventRecord {
                at_ns: e
                    .get("at_ns")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| schema("recorder: event missing at_ns"))?,
                seq: e.get("seq").and_then(json::Value::as_u64).unwrap_or(idx as u64),
                name: e
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| schema("recorder: event missing name"))?
                    .to_string(),
                detail: e
                    .get("detail")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| schema("recorder: event missing detail"))?
                    .to_string(),
            });
        }
        let next_event_seq = events.len() as u64;
        let mut spans = Vec::new();
        let mut span_cap = DEFAULT_SPAN_CAP;
        let mut spans_dropped = 0;
        let mut next_span_id = 0;
        if let Some(sv) = v.get("spans") {
            sv.as_object().ok_or_else(|| schema("recorder: spans must be an object"))?;
            span_cap = usize::try_from(
                sv.get("cap")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| schema("recorder: spans.cap must be a u64"))?,
            )
            .map_err(|_| schema("recorder: spans.cap out of range"))?;
            spans_dropped = sv
                .get("dropped")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema("recorder: spans.dropped must be a u64"))?;
            next_span_id = sv
                .get("next_id")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema("recorder: spans.next_id must be a u64"))?;
            for n in sv
                .get("nodes")
                .and_then(json::Value::as_array)
                .ok_or_else(|| schema("recorder: spans.nodes must be an array"))?
            {
                let field = |name: &str| {
                    n.get(name)
                        .and_then(json::Value::as_u64)
                        .ok_or_else(|| schema(&format!("recorder: span missing {name}")))
                };
                let parent = match n.get("parent") {
                    Some(json::Value::Null) | None => None,
                    Some(p) => {
                        Some(p.as_u64().ok_or_else(|| schema("recorder: span parent not a u64"))?)
                    }
                };
                let mut attrs = Vec::new();
                if let Some(av) = n.get("attrs") {
                    for (k, raw) in av
                        .as_object()
                        .ok_or_else(|| schema("recorder: span attrs must be an object"))?
                    {
                        let val = AttrValue::from_value(raw).ok_or_else(|| {
                            schema(&format!("recorder: span attr {k} has unsupported type"))
                        })?;
                        attrs.push((k.clone(), val));
                    }
                }
                spans.push(SpanRecord {
                    id: field("id")?,
                    parent,
                    name: n
                        .get("name")
                        .and_then(json::Value::as_str)
                        .ok_or_else(|| schema("recorder: span missing name"))?
                        .to_string(),
                    start_ns: field("start_ns")?,
                    end_ns: field("end_ns")?,
                    attrs,
                });
            }
        }
        let mut waves = BTreeMap::new();
        let mut wave_cap = DEFAULT_WAVE_CAP;
        let mut waves_dropped = 0;
        if let Some(wv) = v.get("waves") {
            wave_cap = usize::try_from(
                wv.get("cap")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| schema("recorder: waves.cap must be a u64"))?,
            )
            .map_err(|_| schema("recorder: waves.cap out of range"))?;
            waves_dropped = wv
                .get("dropped")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| schema("recorder: waves.dropped must be a u64"))?;
            for (chan, rows) in wv
                .get("channels")
                .and_then(json::Value::as_object)
                .ok_or_else(|| schema("recorder: waves.channels must be an object"))?
            {
                let mut samples = Vec::new();
                for row in rows
                    .as_array()
                    .ok_or_else(|| schema("recorder: waveform channel must be an array"))?
                {
                    let pair = row
                        .as_array()
                        .ok_or_else(|| schema("recorder: waveform sample must be [at_ns, v]"))?;
                    let (at, val) = match pair {
                        [at, val] => (
                            at.as_u64()
                                .ok_or_else(|| schema("recorder: sample at_ns must be a u64"))?,
                            val.as_f64()
                                .ok_or_else(|| schema("recorder: sample value must be a number"))?,
                        ),
                        _ => return Err(schema("recorder: waveform sample must be [at_ns, v]")),
                    };
                    samples.push(WaveSample { at_ns: at, value: val });
                }
                waves.insert(chan.clone(), samples);
            }
        }
        Ok(Recorder {
            inner: Some(Arc::new(Mutex::new(Inner {
                clock_ns,
                counters,
                gauges,
                timings,
                hists,
                events,
                next_event_seq,
                spans,
                next_span_id,
                open_spans: Vec::new(),
                span_cap,
                spans_dropped,
                waves,
                wave_cap,
                waves_dropped,
            }))),
        })
    }
}

/// An open span handle; see [`Recorder::span`].
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: String,
    id: u64,
    start_ns: u64,
    open: bool,
}

impl Span {
    /// This span's trace-tree id (0 on a disabled recorder).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a typed key/value attribute to this span's tree node.
    /// No-op after the span closed or past the retention cap.
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        if !self.open {
            return;
        }
        let id = self.id;
        let value = value.into();
        self.rec.with(|i| {
            if let Some(node) = i.span_mut(id) {
                node.attrs.push((key.to_string(), value));
            }
        });
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.open {
            return;
        }
        self.open = false;
        let id = self.id;
        let start_ns = self.start_ns;
        self.rec.with(|i| {
            let end = i.clock_ns;
            let elapsed = end.saturating_sub(start_ns);
            i.timings.entry(self.name.clone()).or_default().record(elapsed);
            if let Some(pos) = i.open_spans.iter().rposition(|&x| x == id) {
                i.open_spans.remove(pos);
            }
            if let Some(node) = i.span_mut(id) {
                node.end_ns = end;
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.incr("x", 3);
        rec.advance(100);
        rec.event("e", "detail");
        rec.record("h", 7);
        rec.gauge("g", 1.5);
        rec.sample("w", 0.8);
        let s = rec.span("s");
        s.attr("k", 1u64);
        drop(s);
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("x"), 0);
        assert_eq!(rec.now_ns(), 0);
        assert!(rec.events().is_empty());
        assert!(rec.timings().is_empty());
        assert!(rec.histograms().is_empty());
        assert!(rec.gauges().is_empty());
        assert!(rec.spans().is_empty());
        assert!(rec.waveforms().is_empty());
    }

    #[test]
    fn spans_measure_virtual_time() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("outer");
            rec.advance(50);
            {
                let _inner = rec.span("inner");
                rec.advance(25);
            }
        }
        let t = rec.timings();
        assert_eq!(t["outer"], StepTiming { count: 1, total_ns: 75, min_ns: 75, max_ns: 75 });
        assert_eq!(t["inner"], StepTiming { count: 1, total_ns: 25, min_ns: 25, max_ns: 25 });
    }

    #[test]
    fn repeated_spans_accumulate_with_min_max() {
        let rec = Recorder::new();
        for d in [10u64, 30, 20] {
            let s = rec.span("step");
            rec.advance(d);
            s.end();
        }
        assert_eq!(
            rec.timings()["step"],
            StepTiming { count: 3, total_ns: 60, min_ns: 10, max_ns: 30 }
        );
    }

    #[test]
    fn trace_tree_links_parents_and_attrs() {
        let rec = Recorder::new();
        let outer = rec.span("outer");
        outer.attr("rail", "VDD_CORE");
        rec.advance(5);
        {
            let inner = rec.span("inner");
            inner.attr("bits", 8usize);
            inner.attr("held", true);
            rec.advance(7);
        }
        outer.end();
        let sibling = rec.span("sibling");
        sibling.end();

        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].attrs, vec![("rail".to_string(), AttrValue::from("VDD_CORE"))]);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].start_ns, 5);
        assert_eq!(spans[1].end_ns, 12);
        assert_eq!(spans[2].name, "sibling");
        assert_eq!(spans[2].parent, None, "sibling opens after outer closed");
        assert_eq!(rec.spans_dropped(), 0);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let rec = Recorder::with_caps(2, 4);
        for n in ["a", "b", "c", "d"] {
            rec.span(n).end();
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2, "only the first two spans are retained");
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(rec.spans_dropped(), 2);
        // Timings still see every span: the cap only bounds the tree.
        assert_eq!(rec.timings()["c"].count, 1);
    }

    #[test]
    fn wave_cap_drops_and_counts() {
        let rec = Recorder::with_caps(8, 2);
        for i in 0..5 {
            rec.sample("ch", f64::from(i));
        }
        assert_eq!(rec.waveforms()["ch"].len(), 2);
        assert_eq!(rec.waves_dropped(), 3);
    }

    #[test]
    fn clones_share_the_store() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.incr("shared", 2);
        rec.incr("shared", 1);
        assert_eq!(rec.counter("shared"), 3);
    }

    #[test]
    fn events_are_timestamped_and_sequenced() {
        let rec = Recorder::new();
        rec.advance(42);
        rec.event("fault", "rail brown-out");
        rec.event("fault", "again, same instant");
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ns, 42);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].at_ns, 42);
        assert_eq!(events[1].seq, 1, "colliding timestamps stay totally ordered");
    }

    #[test]
    fn gauges_last_write_wins() {
        let rec = Recorder::new();
        rec.gauge("v", 0.8);
        rec.gauge("v", 0.75);
        assert_eq!(rec.gauge_value("v"), Some(0.75));
        assert_eq!(rec.gauge_value("missing"), None);
    }

    #[test]
    fn histograms_record_and_merge() {
        let rec = Recorder::new();
        for v in [5u64, 500, 50_000] {
            rec.record("lat", v);
        }
        let h = rec.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 50_000);
        assert!(rec.histogram("missing").is_none());
    }

    #[test]
    fn waveforms_sample_on_the_virtual_clock() {
        let rec = Recorder::new();
        rec.advance(10);
        rec.sample("pdn.VDD_CORE.v", 0.8);
        rec.sample_at("pdn.VDD_CORE.v", 25, 0.42);
        let w = &rec.waveforms()["pdn.VDD_CORE.v"];
        assert_eq!(w[0], WaveSample { at_ns: 10, value: 0.8 });
        assert_eq!(w[1], WaveSample { at_ns: 25, value: 0.42 });
    }

    #[test]
    fn recorder_roundtrips_through_value() {
        let rec = Recorder::new();
        rec.incr("reps", 3);
        rec.advance(40);
        rec.event("fault", "brown-out at rail VDD_CORE");
        rec.gauge("last_v", 0.78);
        rec.record("lat", 17);
        rec.sample("w.v", 0.8);
        {
            let s = rec.span("step");
            s.attr("rep", 7u64);
            rec.advance(10);
            s.end();
        }
        let restored = Recorder::from_value(&rec.to_value()).unwrap();
        assert_eq!(restored.to_json(), rec.to_json(), "restore must be byte-exact");
        // The restored recorder keeps recording seamlessly.
        restored.incr("reps", 1);
        assert_eq!(restored.counter("reps"), 4);
        assert_eq!(restored.now_ns(), 50);
        assert_eq!(restored.spans().len(), 1);
        assert_eq!(restored.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn from_value_accepts_legacy_exports() {
        // The pre-trace-tree export shape: no gauges/hists/spans/waves,
        // timings without min/max, events without seq.
        let legacy = json::Value::object(vec![
            ("clock_ns", json::Value::from(50u64)),
            ("counters", json::Value::object(vec![("reps", json::Value::from(3u64))])),
            (
                "timings",
                json::Value::object(vec![(
                    "step",
                    json::Value::object(vec![
                        ("count", json::Value::from(2u64)),
                        ("total_ns", json::Value::from(30u64)),
                    ]),
                )]),
            ),
            (
                "events",
                json::Value::Array(vec![json::Value::object(vec![
                    ("at_ns", json::Value::from(40u64)),
                    ("name", json::Value::from("fault")),
                    ("detail", json::Value::from("legacy")),
                ])]),
            ),
        ]);
        let rec = Recorder::from_value(&legacy).unwrap();
        assert_eq!(rec.counter("reps"), 3);
        let t = rec.timings()["step"];
        assert_eq!((t.min_ns, t.max_ns), (0, 30), "conservative bounds for legacy timings");
        assert_eq!(rec.events()[0].seq, 0, "legacy events numbered by position");
        assert!(rec.spans().is_empty());
        assert!(rec.histograms().is_empty());
    }

    #[test]
    fn recorder_restore_rejects_malformed_exports() {
        assert!(Recorder::from_value(&json::Value::Null).is_err());
        let missing_clock = json::Value::object(vec![("counters", json::Value::Object(vec![]))]);
        assert!(Recorder::from_value(&missing_clock).is_err());
        let bad_counter = json::Value::object(vec![
            ("clock_ns", json::Value::from(0u64)),
            ("counters", json::Value::object(vec![("x", json::Value::from("nope"))])),
            ("timings", json::Value::Object(vec![])),
            ("events", json::Value::Array(vec![])),
        ]);
        let err = Recorder::from_value(&bad_counter).unwrap_err();
        assert!(err.detail.contains("counter x"), "{err}");
        // A non-u64 event timestamp (e.g. a float) is a schema error,
        // not a silent truncation.
        let bad_timestamp = json::Value::object(vec![
            ("clock_ns", json::Value::from(0u64)),
            ("counters", json::Value::Object(vec![])),
            ("timings", json::Value::Object(vec![])),
            (
                "events",
                json::Value::Array(vec![json::Value::object(vec![
                    ("at_ns", json::Value::from(1.5f64)),
                    ("name", json::Value::from("e")),
                    ("detail", json::Value::from("d")),
                ])]),
            ),
        ]);
        let err = Recorder::from_value(&bad_timestamp).unwrap_err();
        assert!(err.detail.contains("at_ns"), "{err}");
    }

    /// Records one "repetition" worth of activity onto `rec`, varying
    /// with `i` so reps are distinguishable in the merged export.
    /// Exercises every store: counters, gauges, timings, histograms,
    /// events, nested spans with attributes, and waveform samples.
    fn record_rep(rec: &Recorder, i: u64) {
        let s = rec.span("rep");
        s.attr("rep", i);
        rec.incr("reps", 1);
        rec.incr(if i.is_multiple_of(2) { "even" } else { "odd" }, i + 1);
        rec.gauge("last_rep", i as f64);
        rec.record("rep_cost", 10 + i);
        rec.advance(10 + i);
        {
            let inner = rec.span("rep.step");
            inner.attr("kind", "extract");
            rec.sample("rail.v", 0.8 - (i as f64) * 0.01);
            rec.advance(3);
        }
        rec.event("tick", &format!("rep {i}"));
        rec.event("tick", &format!("rep {i} again, same timestamp"));
        rec.advance(5);
        s.end();
    }

    #[test]
    fn absorbing_forks_in_order_matches_sequential_recording() {
        let sequential = Recorder::new();
        sequential.advance(3); // a non-zero base clock, like a resumed run
        for i in 0..5 {
            record_rep(&sequential, i);
        }

        let merged = Recorder::new();
        merged.advance(3);
        // Forks recorded "out of order" (as parallel workers would), then
        // absorbed in rep order.
        let forks: Vec<Recorder> = (0..5).map(|_| merged.fork()).collect();
        for i in (0..5).rev() {
            record_rep(&forks[i as usize], i);
        }
        for fork in &forks {
            assert!(fork.now_ns() >= 15, "fork clocks start at zero and advance");
        }
        for fork in &forks {
            merged.absorb(fork);
        }

        assert_eq!(merged.to_json(), sequential.to_json(), "merge must be byte-identical");
        assert_eq!(merged.counter("reps"), 5);
        assert_eq!(merged.timings()["rep"].count, 5);
        assert_eq!(merged.spans().len(), 10, "5 reps x 2 spans each");
        assert_eq!(merged.histogram("rep_cost").unwrap().count(), 5);
        assert_eq!(merged.gauge_value("last_rep"), Some(4.0), "last absorbed fork wins");
        assert_eq!(merged.waveforms()["rail.v"].len(), 5);
    }

    #[test]
    fn absorb_splices_the_trace_tree() {
        let rec = Recorder::new();
        rec.span("warmup").end();
        let sub = rec.fork();
        {
            let outer = sub.span("outer");
            sub.advance(10);
            sub.span("inner").end();
            outer.end();
        }
        rec.absorb(&sub);
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        // Fork ids shifted past the parent's: warmup=0, outer=1, inner=2.
        assert_eq!(
            spans.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "fork span ids splice after the parent's"
        );
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None, "fork roots stay roots when nothing is open");
        assert_eq!(spans[2].parent, Some(1), "fork-internal parent links shift with the ids");
    }

    #[test]
    fn absorb_reparents_fork_roots_under_the_open_span() {
        let rec = Recorder::new();
        let campaign = rec.span("campaign");
        let sub = rec.fork();
        sub.span("rep").end();
        rec.absorb(&sub);
        campaign.end();
        let spans = rec.spans();
        assert_eq!(spans[1].name, "rep");
        assert_eq!(
            spans[1].parent,
            Some(spans[0].id),
            "a fork absorbed inside an open span nests under it"
        );
    }

    #[test]
    fn absorb_orders_colliding_timestamps_by_sequence() {
        // Two forks that never advance their clocks: every event lands
        // at the same shifted timestamp. The merged log must still have
        // a stable total order — the regression this guards is absorb
        // merging by timestamp-shift only.
        let build = || {
            let rec = Recorder::new();
            rec.advance(100);
            rec.event("base", "before forks");
            let a = rec.fork();
            a.event("a", "first fork, t=0");
            a.event("a", "first fork again, t=0");
            let b = rec.fork();
            b.event("b", "second fork, t=0");
            rec.absorb(&a);
            rec.absorb(&b);
            rec
        };
        let rec = build();
        let events = rec.events();
        assert_eq!(events.iter().map(|e| e.at_ns).collect::<Vec<_>>(), vec![100, 100, 100, 100]);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["base", "a", "a", "b"],
            "absorb order is the total order for colliding timestamps"
        );
        assert_eq!(rec.to_json(), build().to_json(), "and it is reproducible");
    }

    #[test]
    fn min_max_survive_fork_and_absorb() {
        let sequential = Recorder::new();
        for d in [10u64, 30, 20] {
            let s = sequential.span("step");
            sequential.advance(d);
            s.end();
        }
        let merged = Recorder::new();
        for d in [10u64, 30, 20] {
            let f = merged.fork();
            let s = f.span("step");
            f.advance(d);
            s.end();
            merged.absorb(&f);
        }
        assert_eq!(merged.timings()["step"], sequential.timings()["step"]);
        assert_eq!(
            merged.timings()["step"],
            StepTiming { count: 3, total_ns: 60, min_ns: 10, max_ns: 30 }
        );
    }

    #[test]
    fn capped_merge_matches_capped_sequential() {
        let run = |parallel: bool| {
            let rec = Recorder::with_caps(3, 2);
            if parallel {
                let forks: Vec<Recorder> = (0..3).map(|_| rec.fork()).collect();
                for (i, f) in forks.iter().enumerate() {
                    record_rep(f, i as u64);
                }
                for f in &forks {
                    rec.absorb(f);
                }
            } else {
                for i in 0..3 {
                    record_rep(&rec, i);
                }
            }
            rec
        };
        let seq = run(false);
        let par = run(true);
        assert_eq!(par.to_json(), seq.to_json());
        assert_eq!(seq.spans().len(), 3);
        assert_eq!(seq.spans_dropped(), 3);
        assert_eq!(seq.waveforms()["rail.v"].len(), 2);
        assert_eq!(seq.waves_dropped(), 1);
    }

    #[test]
    fn fork_of_disabled_recorder_is_disabled_and_absorb_is_inert() {
        let disabled = Recorder::disabled();
        assert!(!disabled.fork().is_enabled());

        // Absorbing into a disabled recorder is a no-op.
        let sub = Recorder::new();
        sub.incr("x", 1);
        disabled.absorb(&sub);
        assert_eq!(disabled.counter("x"), 0);

        // Absorbing a disabled fork changes nothing.
        let rec = Recorder::new();
        rec.incr("x", 2);
        rec.advance(7);
        let before = rec.to_json();
        rec.absorb(&Recorder::disabled());
        assert_eq!(rec.to_json(), before);
    }

    #[test]
    fn absorb_shifts_event_timestamps_by_the_base_clock() {
        let rec = Recorder::new();
        rec.advance(100);
        let sub = rec.fork();
        sub.advance(42);
        sub.event("e", "sub event");
        sub.sample("w", 1.0);
        rec.absorb(&sub);
        assert_eq!(rec.events()[0].at_ns, 142);
        assert_eq!(rec.waveforms()["w"][0].at_ns, 142);
        assert_eq!(rec.now_ns(), 142);
    }

    #[test]
    fn json_export_is_deterministic() {
        let build = || {
            let rec = Recorder::new();
            rec.incr("b", 2);
            rec.incr("a", 1);
            rec.advance(7);
            rec.event("e", "x");
            rec.to_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"counters\""));
        // BTreeMap ordering: "a" before "b".
        assert!(a.find("\"a\"").unwrap() < a.find("\"b\"").unwrap());
    }
}
