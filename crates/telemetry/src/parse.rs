//! A minimal JSON parser for the values [`crate::json`] renders.
//!
//! The workspace's reports are written by the hand-rolled builder in
//! [`crate::json`]; checkpoint/resume needs to read them back. This
//! parser accepts exactly the JSON that builder emits (plus arbitrary
//! inter-token whitespace), and classifies numbers the same way the
//! builder does: a non-negative integer literal becomes
//! [`Value::UInt`], a negative one [`Value::Int`], and anything with a
//! decimal point or exponent [`Value::Float`] — so
//! `parse(v.render()) == v` for every value the builder produces (the
//! builder renders non-finite floats as `null`, which round-trips as
//! [`Value::Null`]).
//!
//! Like the builder, it is dependency-free and deterministic; errors
//! carry the byte offset they occurred at.

use crate::json::Value;

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth [`parse`] accepts. Recursion into
/// arrays/objects is bounded so adversarially deep input (a checkpoint
/// file is attacker-ish input: it comes from disk) errors out instead
/// of overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// [`ParseError`] on malformed input, trailing non-whitespace, or
/// nesting deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, detail: detail.into() }
    }

    /// Bounds container recursion; call on entering `[` or `{`.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; skip the
                            // outer advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning their value.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let x: f64 =
                text.parse().map_err(|e| ParseError { at: start, detail: format!("{e}") })?;
            if !x.is_finite() {
                return Err(ParseError { at: start, detail: "non-finite float".into() });
            }
            Ok(Value::Float(x))
        } else if let Some(rest) = text.strip_prefix('-') {
            if rest.is_empty() {
                return Err(ParseError { at: start, detail: "lone minus sign".into() });
            }
            let n: i64 =
                text.parse().map_err(|e| ParseError { at: start, detail: format!("{e}") })?;
            Ok(Value::Int(n))
        } else {
            if text.is_empty() {
                return Err(ParseError { at: start, detail: "expected digits".into() });
            }
            let n: u64 =
                text.parse().map_err(|e| ParseError { at: start, detail: format!("{e}") })?;
            Ok(Value::UInt(n))
        }
    }
}

// ----------------------------------------------------------------------
// Typed accessors: the small schema layer checkpoint loading builds on.
// ----------------------------------------------------------------------

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (floats and integers all widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        assert_eq!(&parse(&v.render()).unwrap(), v, "compact roundtrip of {v:?}");
        assert_eq!(&parse(&v.render_pretty()).unwrap(), v, "pretty roundtrip of {v:?}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::UInt(0));
        roundtrip(&Value::UInt(u64::MAX));
        roundtrip(&Value::Int(-1));
        roundtrip(&Value::Int(i64::MIN));
        roundtrip(&Value::Float(0.5));
        roundtrip(&Value::Float(-3.25));
        roundtrip(&Value::Float(2.0));
        roundtrip(&Value::Float(1e300));
        roundtrip(&Value::Float(5e-324));
    }

    #[test]
    fn strings_roundtrip() {
        roundtrip(&Value::from(""));
        roundtrip(&Value::from("plain"));
        roundtrip(&Value::from("esc \" \\ \n \r \t \u{1} end"));
        roundtrip(&Value::from("unicode: héllo 日本 🦀"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&Value::Array(vec![]));
        roundtrip(&Value::Object(vec![]));
        roundtrip(&Value::object(vec![
            ("nested", Value::Array(vec![Value::Null, Value::UInt(7)])),
            ("obj", Value::object(vec![("k", Value::from("v"))])),
        ]));
    }

    #[test]
    fn parses_builder_escapes() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Value::from("Aé"));
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Value::from("🦀"));
        assert_eq!(parse(r#""\/""#).unwrap(), Value::from("/"));
    }

    #[test]
    fn number_classification_matches_builder() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("42.0").unwrap(), Value::Float(42.0));
        assert_eq!(parse("4e2").unwrap(), Value::Float(400.0));
        assert_eq!(parse("-0.5").unwrap(), Value::Float(-0.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "tru",
            "01x",
            "- ",
            "[1]]",
            "{\"a\":1}{",
            "\"\\ud800\"", // lone high surrogate
            "\"\\q\"",     // bad escape
            "1e999",       // overflows to +inf
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn rejects_truncated_documents() {
        // Every proper prefix of a valid document must fail cleanly —
        // the shape a half-written checkpoint file takes after a crash.
        let doc = r#"{"clock_ns":42,"events":[{"name":"eé"}],"x":-1.5e3}"#;
        for cut in (1..doc.len()).filter(|&c| doc.is_char_boundary(c)) {
            assert!(parse(&doc[..cut]).is_err(), "must reject truncation at byte {cut}");
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn duplicate_keys_are_preserved_and_get_returns_the_first() {
        // The builder never emits duplicates, but the parser tolerates
        // them (insertion order preserved); lookups see the first.
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn non_u64_timestamps_are_not_u64() {
        // Schema layers key off as_u64 to reject floats/negatives where
        // a timestamp is required; confirm the accessor refuses them.
        for doc in ["1.5", "-3", "\"42\"", "null"] {
            assert_eq!(parse(doc).unwrap().as_u64(), None, "{doc}");
        }
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowed() {
        let deep =
            |n: usize, open: &str, close: &str| format!("{}1{}", open.repeat(n), close.repeat(n));
        assert!(parse(&deep(MAX_DEPTH, "[", "]")).is_ok());
        let err = parse(&deep(MAX_DEPTH + 1, "[", "]")).unwrap_err();
        assert!(err.detail.contains("nesting"), "{err}");
        // Far past the bound must error, not overflow the stack —
        // including unclosed (truncated) nests and object nesting.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&deep(100_000, "[", "]")).is_err());
        assert!(parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn empty_containers_do_not_leak_depth() {
        // `[]` takes the early-exit path in array(); its depth must be
        // released, or MAX_DEPTH siblings would trip the bound.
        let many_siblings = format!("[{}1]", "[],".repeat(MAX_DEPTH * 2));
        assert!(parse(&many_siblings).is_ok());
        let many_objects = format!("[{}1]", "{},".repeat(MAX_DEPTH * 2));
        assert!(parse(&many_objects).is_ok());
    }

    #[test]
    fn typed_accessors() {
        let v = parse(r#"{"a": 1, "b": "s", "c": [true], "d": 0.5, "e": -2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(-2.0));
        assert!(v.get("missing").is_none());
        assert!(v.as_object().is_some());
        assert!(Value::Null.get("a").is_none());
    }
}
