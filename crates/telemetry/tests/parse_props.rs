//! Property tests: the telemetry JSON parser inverts the builder.
//!
//! The builder emits numbers in canonical form (non-negative integers
//! as `UInt`, negative as `Int`, finite floats with a forced decimal
//! point or exponent), so the strategy generates exactly that shape:
//! for every such value `v`, `parse(render(v)) == v` — compact and
//! pretty.

use proptest::prelude::*;
use voltboot_telemetry::json::Value;
use voltboot_telemetry::parse::parse;

/// Canonical builder values: what `Value` construction through the
/// `From` impls and `Value::object` can produce, minus non-finite
/// floats (those render as `null` by design and cannot round-trip).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::UInt),
        (i64::MIN..0).prop_map(Value::Int),
        any::<f64>().prop_filter("finite floats only", |x| x.is_finite()).prop_map(Value::Float),
        ".*".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec((".{0,12}", inner), 0..6).prop_map(Value::object),
        ]
    })
}

proptest! {
    #[test]
    fn parse_inverts_render(v in value_strategy()) {
        prop_assert_eq!(&parse(&v.render()).unwrap(), &v);
        prop_assert_eq!(&parse(&v.render_pretty()).unwrap(), &v);
    }

    #[test]
    fn reparse_is_stable(v in value_strategy()) {
        // render → parse → render is a fixed point: the parsed value
        // renders to the same bytes, so checkpoints survive any number
        // of load/save cycles unchanged.
        let first = v.render();
        let second = parse(&first).unwrap().render();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in ".{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_json_like_noise(s in "[\\[\\]{}\",:0-9eE+.\\- \\\\un]{0,128}") {
        // Arbitrary strings are mostly rejected at byte 0; this
        // alphabet keeps the parser deep inside containers, numbers,
        // strings, and escapes, where the panics would hide.
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_deep_nesting(
        depth in 0usize..2_000,
        open in prop_oneof![Just("["), Just("{\"k\":")],
        closed in any::<bool>(),
    ) {
        // Nesting past MAX_DEPTH must error, not overflow the stack —
        // whether or not the nest is ever closed.
        let mut s = open.repeat(depth);
        s.push('1');
        if closed {
            s.push_str(&if open == "[" { "]" } else { "}" }.repeat(depth));
        }
        let result = parse(&s);
        if depth > voltboot_telemetry::parse::MAX_DEPTH {
            prop_assert!(result.is_err());
        }
    }
}
