//! Scenario: the *other* SRAM data-retention attack family (paper §9.2)
//! — data imprinting through circuit aging — and why Volt Boot obsoletes
//! it.
//!
//! If a cell holds the same value for years, bias-temperature
//! instability shifts its power-up state toward that value. An attacker
//! who later powers the chip up can recover a *partial* image of the
//! long-held data — after a decade, and only statistically. Volt Boot
//! needs seconds and is exact.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example aging_imprint
//! ```

use std::time::Duration;
use voltboot_sram::imprint::{ImprintModel, ImprintedArray};
use voltboot_sram::{ArrayConfig, SramArray};

fn main() {
    // A device that has held the same key material in one SRAM region
    // for its whole service life.
    let mut sram = SramArray::new(ArrayConfig::with_bytes("victim", 32), 0xA6E);
    sram.power_on().expect("fresh array");
    sram.write_bytes(0, b"long-lived secret key material..");

    let mut imprint = ImprintedArray::begin(&sram, ImprintModel::calibrated());

    println!("expected recovery of the imprinted data from one power-up image:\n");
    println!("  {:<12} {:>10}", "aged", "recovery");
    for years in [0u64, 1, 2, 5, 10, 20] {
        let mut aged = imprint.clone();
        aged.age(Duration::from_secs(years * 365 * 24 * 3600));
        println!(
            "  {:<12} {:>9.1}%",
            format!("{years} years"),
            aged.expected_recovery(&sram) * 100.0
        );
    }

    imprint.age(Duration::from_secs(10 * 365 * 24 * 3600));
    println!(
        "\nafter 10 years: {:.1}% expected recovery — against 50% chance level,",
        imprint.expected_recovery(&sram) * 100.0
    );
    println!("still far from usable key material.");
    println!("\nVolt Boot on the same array: attach a probe, cycle power, read 100%.");
    println!("(See the quickstart example.) This is the paper's point: imprinting");
    println!("attacks need a decade; power-domain separation needs a screwdriver.");
}
