//! Scenario: a defender evaluates the paper's §8 countermeasures against
//! Volt Boot on their product, before and after deployment.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example defense_evaluation
//! ```

use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::countermeasures::{run_power_down_purge, Countermeasure};
use voltboot_armlite::program::builders;
use voltboot_soc::devices;

fn recovered_fraction(soc: &mut voltboot_soc::Soc) -> f64 {
    match VoltBootAttack::new("TP15").extraction(Extraction::Caches { cores: vec![0] }).execute(soc)
    {
        Ok(outcome) => {
            let mut bytes = 0usize;
            for img in outcome.images_matching("core0.l1d") {
                bytes += img.bits.to_bytes().iter().filter(|&&b| b == 0xAA).count();
            }
            bytes as f64 / (8.0 * 1024.0)
        }
        Err(e) => {
            println!("    attack stopped: {e}");
            0.0
        }
    }
}

fn staged_device(seed: u64, cm: Countermeasure) -> voltboot_soc::Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    cm.apply(&mut soc);
    soc.enable_caches(0);
    let p = builders::fill_bytes(0x10_0000, 0xAA, 8 * 1024);
    soc.run_program(0, &p, 0x8_0000, 50_000_000);
    soc
}

fn main() {
    println!("Evaluating Volt Boot countermeasures on a BCM2711-class product:\n");
    for cm in Countermeasure::all() {
        let mut soc = staged_device(0xDEF + cm as u64, cm);
        println!("- {}", cm.name());
        let fraction = recovered_fraction(&mut soc);
        println!(
            "    secret recovered: {:.1}%  | deployable without new silicon: {}",
            (fraction * 100.0).min(100.0),
            if cm.deployable_without_new_silicon() { "yes" } else { "no" },
        );
    }

    println!("\nWhy the software purge is not among the survivors:");
    // Orderly shutdown: the purge handler runs and wipes everything.
    let mut soc = staged_device(0xFEE, Countermeasure::PowerDownPurge);
    run_power_down_purge(&mut soc).expect("orderly shutdown path");
    println!(
        "  orderly shutdown (handler runs): {:.1}% recovered",
        recovered_fraction(&mut soc) * 100.0
    );
    // Abrupt disconnect: the handler never executes.
    let mut soc = staged_device(0xFEF, Countermeasure::PowerDownPurge);
    println!(
        "  abrupt disconnect (handler skipped): {:.1}% recovered",
        (recovered_fraction(&mut soc) * 100.0).min(100.0)
    );
}
