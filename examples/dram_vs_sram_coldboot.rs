//! Scenario: why the world moved keys on-chip — and why that stopped
//! helping.
//!
//! Act 1 (the Halderman era): a key schedule in DRAM survives a chilled
//! power cycle with a handful of directional bit decays; the classic
//! repair search recovers the key.
//!
//! Act 2 (the on-chip era): the same schedule in NEON registers is
//! immune to any cold boot — SRAM loses state in milliseconds and decays
//! to an unbiased power-up state, so no repair is possible.
//!
//! Act 3 (Volt Boot): power domain separation re-opens the on-chip copy.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example dram_vs_sram_coldboot
//! ```

use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot::dram_recovery::{recover_and_verify, GroundState};
use voltboot_crypto::aes::{Aes, AesKey, KeySchedule};
use voltboot_crypto::tresor::TresorContext;
use voltboot_soc::devices;

const SCHEDULE_ADDR: u64 = 0x30_0000;

fn staged_device(seed: u64, key: &AesKey) -> voltboot_soc::Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    let schedule = KeySchedule::expand(key);
    soc.dram_mut().write(SCHEDULE_ADDR, &schedule.to_bytes()).unwrap();
    TresorContext::install(&mut soc, 0, key).unwrap();
    soc
}

fn main() {
    let key = AesKey::Aes128(*b"generational key");
    let probe = Aes::new(&key).encrypt_block(b"known plaintext!");
    let verify = |aes: &Aes| aes.encrypt_block(b"known plaintext!") == probe;

    // --- Act 1: chilled DRAM transplant -------------------------------
    let mut soc = staged_device(1, &key);
    let outcome = ColdBootAttack::new(-50.0, 30_000)
        .extraction(Extraction::DramRaw { addr: SCHEDULE_ADDR, len: 4096 })
        .execute(&mut soc)
        .unwrap();
    let dump = &outcome.image(&format!("dram@{SCHEDULE_ADDR:#x}")).unwrap().bits;
    match recover_and_verify(dump, GroundState::Zero, verify) {
        Some(rec) => println!(
            "Act 1 — DRAM at -50 C, 30 s off: key RECOVERED ({} bit(s) repaired)",
            rec.repaired_bits
        ),
        None => println!("Act 1 — DRAM at -50 C: key not recovered (unexpected)"),
    }

    // --- Act 2: the on-chip copy under the same cold boot --------------
    let mut soc = staged_device(2, &key);
    let outcome = ColdBootAttack::new(-50.0, 30_000)
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let regs = &outcome.image("core0.vregs").unwrap().bits;
    let exact = voltboot::analysis::find_key_schedules(regs);
    let tolerant = voltboot::analysis::find_key_schedules_tolerant(regs, 4, 10);
    println!(
        "Act 2 — NEON registers, same cold boot: {} exact hits, {} tolerant hits (bistable SRAM has no decay direction)",
        exact.len(),
        tolerant.iter().filter(|(_, _, ks)| verify(&Aes::from_schedule(ks.clone()))).count()
    );

    // --- Act 3: Volt Boot on the on-chip copy --------------------------
    let mut soc = staged_device(3, &key);
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let regs = &outcome.image("core0.vregs").unwrap().bits;
    let stolen = voltboot::analysis::find_key_schedules(regs)
        .into_iter()
        .find(|(_, ks)| verify(&Aes::from_schedule(ks.clone())));
    match stolen {
        Some((off, _)) => {
            println!("Act 3 — Volt Boot: key RECOVERED error-free at register offset {off}")
        }
        None => println!("Act 3 — Volt Boot: key not recovered (unexpected)"),
    }
}
