//! Scenario: stealing a full-disk-encryption key that "never leaves the
//! chip" — the paper's motivating end-to-end attack.
//!
//! A device encrypts its storage with AES-128; following TRESOR-style
//! hardening, the expanded key schedule lives only in the NEON register
//! file. Cold boot cannot touch it. Volt Boot holds the core power
//! domain across a power cycle, dumps the registers, finds a consistent
//! AES key schedule in the image, and decrypts the stolen disk offline.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example fde_key_theft
//! ```

use voltboot::analysis;
use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot_crypto::aes::Aes;
use voltboot_crypto::fde::{EncryptedDisk, SECTOR_BYTES};
use voltboot_crypto::tresor::TresorContext;
use voltboot_soc::devices;

fn main() {
    // --- The victim's world -------------------------------------------
    let mut disk = EncryptedDisk::create("owner-password", 0xD15C, 64);
    let cipher = disk.unlock("owner-password").expect("owner knows the password");
    let mut sector = [0u8; SECTOR_BYTES];
    let secret = b"wallet-seed: pony torch vivid lobster amateur nephew";
    sector[..secret.len()].copy_from_slice(secret);
    disk.write_sector(&cipher, 7, &sector).expect("write");
    println!(
        "victim: disk sector 7 encrypted; raw ciphertext starts {:02x?}...",
        &disk.raw_sector(7).unwrap()[..8]
    );

    // The key schedule goes on-chip and nowhere else.
    let mut soc = devices::raspberry_pi_4(0xD15C);
    soc.power_on_all();
    let key = cipher.schedule().original_key();
    let ctx = TresorContext::install(&mut soc, 0, &key).expect("install");
    println!("victim: AES-128 schedule installed in v0..v{} (TRESOR-style)\n", ctx.reg_count - 1);

    // --- The attacker's world -----------------------------------------
    // Physical access: probe on TP15, power cycle, dump the registers.
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .expect("attack");
    for step in &outcome.steps {
        println!("  [{}] {}", step.step, step.detail);
    }

    // Scan the dump for byte runs that satisfy the AES key-expansion
    // recurrence. Volt Boot images are error-free, so this is exact.
    let image = &outcome.image("core0.vregs").unwrap().bits;
    let schedules = analysis::find_key_schedules(image);
    println!("\nkey-schedule scan: {} candidate(s) in the register dump", schedules.len());

    for (offset, schedule) in schedules {
        let candidate = Aes::from_schedule(schedule);
        if disk.verify_cipher(&candidate) {
            println!("  offset {offset}: VERIFIED against the stolen disk");
            let plain = disk.read_sector(&candidate, 7).expect("read");
            let text = String::from_utf8_lossy(&plain[..secret.len()]);
            println!("  decrypted sector 7: {text:?}");
            return;
        }
    }
    println!("no working key recovered (did a countermeasure stop the attack?)");
}
