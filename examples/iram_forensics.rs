//! Scenario: forensic recovery of iRAM contents from a headless
//! multimedia device (the paper's §7.3, i.MX535).
//!
//! The device's 128 KB on-chip iRAM sits in its own power domain
//! (VDDAL1, pad SH13), separate from the CPU core. Because it boots from
//! internal ROM, no attacker boot media is needed — just the probe, a
//! power cycle, and a JTAG dump. The boot ROM scribbles over a small
//! scratchpad window; everything else survives bit-exact.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example iram_forensics
//! ```

use voltboot::analysis;
use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::workloads;
use voltboot_soc::devices;

fn main() {
    let mut soc = devices::imx53_qsb(0x1234);
    soc.power_on_all();

    // The device has been streaming media: its iRAM holds frame data
    // (we stage the recognizable 512x512 test bitmap, four copies).
    let reference = workloads::iram_bitmap(&mut soc).expect("stage bitmap");
    println!("victim: {} KB of bitmap data resident in iRAM\n", reference.len() / 8 / 1024);

    let outcome = VoltBootAttack::new("SH13")
        .extraction(Extraction::IramJtag)
        .execute(&mut soc)
        .expect("attack");
    for step in &outcome.steps {
        println!("  [{}] {}", step.step, step.detail);
    }

    let dump = &outcome.image("iram").unwrap().bits;
    let error = analysis::fractional_hamming(dump, &reference);
    println!("\noverall bit error: {:.2}% (paper: 2.7%)", error * 100.0);

    // Localize the damage exactly as Figure 10 does.
    let series = analysis::hamming_series(dump, &reference, 512);
    let clusters = analysis::error_clusters(&series, 64);
    println!(
        "damaged 512-bit windows: {:?}{} (boot-ROM scratchpad + boot stack)",
        &clusters[..clusters.len().min(6)],
        if clusters.len() > 6 { " ..." } else { "" }
    );

    // Render the first quadrant so the damage is visible.
    let quad = voltboot_sram::PackedBits::from_bytes(&dump.to_bytes()[..32 * 1024]);
    println!("\nextracted first quadrant ('#'-dense rows at top = ROM damage):\n");
    println!("{}", analysis::ascii_thumbnail(&quad, 72, 24));
    if std::fs::write("iram_forensics_q0.pbm", analysis::to_pbm(&quad, 512)).is_ok() {
        println!("wrote iram_forensics_q0.pbm (view with any image tool)");
    }
}
