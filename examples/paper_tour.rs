//! A narrated tour of the paper, section by section, in one run.
//!
//! Each stop reproduces one claim quickly (smaller sizes than the full
//! regenerators, same mechanisms). Read alongside the paper — or
//! `DESIGN.md` — to see which module realizes which claim.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example paper_tour
//! ```

use voltboot::analysis;
use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot::workloads;
use voltboot_armlite::program::builders;
use voltboot_pdn::Probe;
use voltboot_soc::devices;

fn stop(section: &str, claim: &str) {
    println!("\n--- {section}: {claim}");
}

fn main() {
    let seed = 0x70_u64;

    stop("S2.1", "SRAM keeps data only above its retention voltage");
    {
        use voltboot_sram::{ArrayConfig, OffEvent, SramArray, Temperature};
        let mut sram = SramArray::new(ArrayConfig::with_bytes("tour", 512), seed);
        sram.power_on().unwrap();
        sram.fill(0xA5).unwrap();
        sram.power_off(OffEvent::held(0.55)).unwrap();
        sram.elapse(std::time::Duration::from_secs(60), Temperature::ROOM);
        let held = sram.power_on().unwrap().retention_fraction();
        sram.power_off(OffEvent::held(0.15)).unwrap();
        sram.elapse(std::time::Duration::from_secs(60), Temperature::ROOM);
        let sagged = sram.power_on().unwrap().retention_fraction();
        println!(
            "held at 0.55 V: {:.1}% retained; sagged to 0.15 V: {:.1}%",
            held * 100.0,
            sagged * 100.0
        );
    }

    stop("S3", "cold boot fails on on-chip SRAM at any survivable temperature");
    {
        let mut soc = devices::raspberry_pi_4(seed);
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(512), 0x8_0000, 100_000);
        let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = ColdBootAttack::new(-40.0, 5).execute(&mut soc).unwrap();
        let hd =
            analysis::fractional_hamming(&outcome.image("core0.l1i.way0").unwrap().bits, &truth);
        println!("-40 C, 5 ms: fractional damage {hd:.3} — the victim's code is gone");
    }

    stop("S5", "power domain separation induces artificial retention");
    {
        let mut soc = devices::raspberry_pi_4(seed ^ 1);
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(512), 0x8_0000, 100_000);
        let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
        let img = &outcome.image("core0.l1i.way0").unwrap().bits;
        println!(
            "probe on TP15, power cycled: accuracy {:.1}% ({} NOP words recovered)",
            (1.0 - analysis::fractional_hamming(img, &truth)) * 100.0,
            analysis::count_pattern(img, &0xD503201Fu32.to_le_bytes())
        );
    }

    stop("S6", "an under-powered probe fails during the disconnect surge");
    {
        let mut soc = devices::raspberry_pi_4(seed ^ 2);
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(512), 0x8_0000, 100_000);
        let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = VoltBootAttack::new("TP15")
            .probe(Probe::weak_source(0.0, 0.2))
            .execute(&mut soc)
            .unwrap();
        println!(
            "0.2 A source: rail sagged to {:.2} V, damage {:.1}%",
            outcome.transient_min_voltage.unwrap(),
            analysis::fractional_hamming(&outcome.image("core0.l1i.way0").unwrap().bits, &truth)
                * 100.0
        );
    }

    stop("S7.2", "vector registers retain (TRESOR keys are exposed)");
    {
        let mut soc = devices::raspberry_pi_4(seed ^ 3);
        soc.power_on_all();
        workloads::register_fill(&mut soc, 0).unwrap();
        let outcome = VoltBootAttack::new("TP15")
            .extraction(Extraction::Registers { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let bytes = outcome.image("core0.vregs").unwrap().bits.to_bytes();
        println!("v0 after the cycle: {:02x?}... (the victim's 0xFF pattern)", &bytes[..4]);
    }

    stop("S7.3", "iRAM survives minus the boot ROM scratchpad");
    {
        let mut soc = devices::imx53_qsb(seed ^ 4);
        soc.power_on_all();
        let reference = workloads::iram_bitmap(&mut soc).unwrap();
        let outcome =
            VoltBootAttack::new("SH13").extraction(Extraction::IramJtag).execute(&mut soc).unwrap();
        let dump = &outcome.image("iram").unwrap().bits;
        println!(
            "error {:.2}%; damage map (1 row = whole iRAM):\n{}",
            analysis::fractional_hamming(dump, &reference) * 100.0,
            analysis::diff_map(&reference, dump, 64, 1)
        );
    }

    stop("S8", "countermeasures: what stops the attack and what does not");
    {
        use voltboot::countermeasures::Countermeasure;
        for cm in [
            Countermeasure::PowerDownPurge,
            Countermeasure::MandatedAuthenticatedBoot,
            Countermeasure::BootTimeMemoryReset,
        ] {
            let mut soc = devices::raspberry_pi_4(seed ^ 5 ^ cm as u64);
            soc.power_on_all();
            cm.apply(&mut soc);
            soc.enable_caches(0);
            soc.run_program(0, &builders::fill_bytes(0x10_0000, 0xAA, 2048), 0x8_0000, 10_000_000);
            let verdict = match VoltBootAttack::new("TP15").execute(&mut soc) {
                Ok(outcome) => {
                    let n: usize = outcome
                        .images_matching("core0.l1d")
                        .map(|i| i.bits.to_bytes().iter().filter(|&&b| b == 0xAA).count())
                        .sum();
                    if n > 1000 {
                        "attack succeeds"
                    } else {
                        "attack stopped"
                    }
                }
                Err(e) => {
                    println!("  {}: attack stopped ({e})", cm.name());
                    continue;
                }
            };
            println!("  {}: {verdict}", cm.name());
        }
    }

    println!("\nTour complete. The full-size regenerators live in voltboot-bench.");
}
