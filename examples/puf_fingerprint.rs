//! Scenario: why vendors leave SRAM uninitialized at boot (paper §5.2.4)
//! — the power-up state is a feature: a PUF fingerprint and a TRNG.
//!
//! This is the design tension behind the "reset SRAM at startup"
//! countermeasure: a hardware boot-time wipe would close Volt Boot's
//! extraction window *and* destroy these applications.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example puf_fingerprint
//! ```

use voltboot_sram::puf::{powerup_samples, trng_extract, EnrolledPuf};

fn main() {
    // Enroll die #1 from five power-up samples.
    let mut die1 = voltboot_sram::puf::test_array("die1", 1024, 1);
    let samples = powerup_samples(&mut die1, 5);
    let puf = EnrolledPuf::enroll(&samples);
    println!(
        "enrolled die 1: {:.1}% of cells stable across 5 power-ups",
        puf.stable_fraction() * 100.0
    );

    // Authenticate: the same die matches, other dies do not.
    let fresh = powerup_samples(&mut die1, 1).pop().unwrap();
    println!("\nauthentication distances (threshold {:.2}):", puf.threshold);
    println!(
        "  die 1 (same silicon):    {:.3}  -> {}",
        puf.distance(&fresh),
        if puf.matches(&fresh) { "MATCH" } else { "reject" }
    );
    for seed in 2..6 {
        let mut other = voltboot_sram::puf::test_array("other", 1024, seed);
        let response = powerup_samples(&mut other, 1).pop().unwrap();
        println!(
            "  die {seed} (different die):  {:.3}  -> {}",
            puf.distance(&response),
            if puf.matches(&response) { "MATCH" } else { "reject" }
        );
    }

    // TRNG: von Neumann debiasing of two power-ups.
    let mut entropy_die = voltboot_sram::puf::test_array("trng", 4096, 99);
    let pair = powerup_samples(&mut entropy_die, 2);
    let bits = trng_extract(&pair[0], &pair[1]);
    let ones = bits.iter().filter(|&&b| b).count();
    println!(
        "\nTRNG: {} unbiased bits from two power-ups of 4 KB ({:.1}% ones)",
        bits.len(),
        ones as f64 / bits.len() as f64 * 100.0
    );
    println!("\nA boot-time SRAM wipe (the MBIST countermeasure) would erase the");
    println!("fingerprint before software could read it — security vs. utility.");
}
