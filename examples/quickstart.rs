//! Quickstart: run the Volt Boot attack end-to-end on a simulated
//! Raspberry Pi 4 and contrast it with a cold-boot attempt.
//!
//! ```text
//! cargo run --release -p voltboot-repro --example quickstart
//! ```

use voltboot::analysis;
use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot_armlite::program::builders;
use voltboot_soc::devices;

fn main() {
    // 1. A victim device: a Raspberry Pi 4 running a bare-metal program
    //    that enables its caches and executes a NOP sled (the paper's
    //    §7.1.1 workload). Seed = which physical die you hold.
    let mut soc = devices::raspberry_pi_4(0xD1E);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.run_program(0, &builders::nop_sled(2048), 0x8_0000, 1_000_000);
    let ground_truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
    println!("victim: NOP sled cached in core 0's i-cache\n");

    // 2. The attack, following the paper's Figure 5 steps: measure pad
    //    TP15, attach a 3 A bench supply at the live voltage, cut main
    //    power, reboot from USB, extract the caches via RAMINDEX.
    let attack = VoltBootAttack::new("TP15").extraction(Extraction::Caches { cores: vec![0] });
    let outcome = attack.execute(&mut soc).expect("attack runs");
    for step in &outcome.steps {
        println!("  [{}] {}", step.step, step.detail);
    }

    let extracted = &outcome.image("core0.l1i.way0").unwrap().bits;
    let accuracy = 1.0 - analysis::fractional_hamming(extracted, &ground_truth);
    let nops = analysis::count_pattern(extracted, &0xD503201Fu32.to_le_bytes());
    println!(
        "\nVolt Boot: retention accuracy {:.2}%, {} NOP words recovered",
        accuracy * 100.0,
        nops
    );

    // 3. The cold-boot baseline on an identical victim: even at the
    //    SoC's -40 C hard limit, nothing survives a few milliseconds.
    let mut soc2 = devices::raspberry_pi_4(0xD1E ^ 1);
    soc2.power_on_all();
    soc2.enable_caches(0);
    soc2.run_program(0, &builders::nop_sled(2048), 0x8_0000, 1_000_000);
    let truth2 = soc2.core(0).unwrap().l1i.way_image(0).unwrap();

    let cold = ColdBootAttack::new(-40.0, 5).execute(&mut soc2).expect("cold boot runs");
    let cold_img = &cold.image("core0.l1i.way0").unwrap().bits;
    let cold_acc = 1.0 - analysis::fractional_hamming(cold_img, &truth2);
    let cold_nops = analysis::count_pattern(cold_img, &0xD503201Fu32.to_le_bytes());
    println!(
        "cold boot (-40 C, 5 ms): match {:.2}% (chance-level), {} NOP words recovered",
        cold_acc * 100.0,
        cold_nops
    );
    println!("\n(The ~90% 'match' of random data vs a mostly-power-up-state way is");
    println!(" expected; what matters is that every NOP of the victim is gone.)");
}
