//! Umbrella crate for the Volt Boot reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and the
//! cross-crate integration tests in `tests/`. The library surface simply
//! re-exports the stack:
//!
//! * [`voltboot`] — attack orchestration, analysis, experiments;
//! * [`voltboot_soc`] — the simulated devices;
//! * [`voltboot_sram`] / [`voltboot_pdn`] / [`voltboot_armlite`] — the
//!   physics, power, and CPU substrates;
//! * [`voltboot_crypto`] — AES and the on-chip key-storage victims.
//!
//! Start with `examples/quickstart.rs`.

#![forbid(unsafe_code)]

pub use voltboot;
pub use voltboot_armlite;
pub use voltboot_crypto;
pub use voltboot_pdn;
pub use voltboot_soc;
pub use voltboot_sram;
