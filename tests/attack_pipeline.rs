//! Cross-crate integration: the full Volt Boot pipeline on all three
//! evaluation platforms.

use voltboot::analysis;
use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::workloads;
use voltboot_pdn::Probe;
use voltboot_soc::devices;

#[test]
fn pi4_cache_attack_is_bit_exact_on_all_cores() {
    let mut soc = devices::raspberry_pi_4(0x1111);
    soc.power_on_all();
    workloads::baremetal_nop_fill(&mut soc).unwrap();
    let truth: Vec<_> = (0..4)
        .map(|c| (0..3).map(|w| soc.core(c).unwrap().l1i.way_image(w).unwrap()).collect::<Vec<_>>())
        .collect();

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0, 1, 2, 3] })
        .execute(&mut soc)
        .unwrap();

    assert!(outcome.rail_held);
    for (core, ways) in truth.iter().enumerate() {
        for (way, want) in ways.iter().enumerate() {
            let img = outcome.image(&format!("core{core}.l1i.way{way}")).unwrap();
            assert_eq!(&img.bits, want, "core {core} way {way} must be bit-exact");
        }
    }
    // 4 cores x (2 d-ways + 3 i-ways) images.
    assert_eq!(outcome.images.len(), 4 * 5);
}

#[test]
fn pi3_attack_works_at_its_higher_rail_voltage() {
    let mut soc = devices::raspberry_pi_3(0x3333);
    soc.power_on_all();
    workloads::baremetal_nop_fill(&mut soc).unwrap();
    let truth = soc.core(2).unwrap().l1i.way_image(0).unwrap();
    let outcome = VoltBootAttack::new("PP58")
        .extraction(Extraction::Caches { cores: vec![2] })
        .execute(&mut soc)
        .unwrap();
    // PP58 sits on a 1.2 V rail; the probe must have attached there.
    let attach = outcome.steps.iter().find(|s| s.step == "attach").unwrap();
    assert!(attach.detail.contains("1.20 V"), "{}", attach.detail);
    assert_eq!(outcome.image("core2.l1i.way0").unwrap().bits, truth);
}

#[test]
fn imx_iram_attack_without_boot_media() {
    let mut soc = devices::imx53_qsb(0x5555);
    soc.power_on_all();
    let reference = workloads::iram_bitmap(&mut soc).unwrap();
    let outcome =
        VoltBootAttack::new("SH13").extraction(Extraction::IramJtag).execute(&mut soc).unwrap();
    // Boots from internal ROM: the reboot step must say so implicitly
    // (no external media; entry 0).
    let reboot = outcome.steps.iter().find(|s| s.step == "reboot").unwrap();
    assert!(reboot.detail.contains("entry 0x0"), "{}", reboot.detail);

    let dump = &outcome.image("iram").unwrap().bits;
    let error = analysis::fractional_hamming(dump, &reference);
    assert!(error > 0.015 && error < 0.04, "iram error {error}");
}

#[test]
fn weak_probe_fails_exactly_where_the_paper_says() {
    // The Pi 4's core rail also powers the CPU cluster: an underpowered
    // probe folds back during the disconnect surge and cells whose DRV
    // exceeds the sagged voltage lose state.
    let mut soc = devices::raspberry_pi_4(0x7777);
    soc.power_on_all();
    workloads::baremetal_nop_fill(&mut soc).unwrap();
    let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
    let outcome =
        VoltBootAttack::new("TP15").probe(Probe::weak_source(0.0, 0.2)).execute(&mut soc).unwrap();
    assert!(outcome.rail_held, "the rail is held, just sagging");
    assert!(outcome.transient_min_voltage.unwrap() < 0.3);
    let got = &outcome.image("core0.l1i.way0").unwrap().bits;
    let hd = analysis::fractional_hamming(got, &truth);
    assert!(hd > 0.05, "sag below DRV must corrupt cells, hd={hd}");

    // The same weak probe on the i.MX535's SRAM-only rail succeeds:
    // there is no core surge on VDDAL1.
    let mut imx = devices::imx53_qsb(0x7778);
    imx.power_on_all();
    let reference = workloads::iram_bitmap(&mut imx).unwrap();
    let outcome = VoltBootAttack::new("SH13")
        .probe(Probe::weak_source(0.0, 0.2))
        .extraction(Extraction::IramJtag)
        .execute(&mut imx)
        .unwrap();
    let dump = &outcome.image("iram").unwrap().bits;
    let error = analysis::fractional_hamming(dump, &reference);
    assert!(error < 0.04, "SRAM-only rail holds even with a weak source: {error}");
}

#[test]
fn attack_steps_follow_figure_5() {
    let mut soc = devices::raspberry_pi_4(0x9999);
    soc.power_on_all();
    let outcome = VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
    let steps: Vec<&str> = outcome.steps.iter().map(|s| s.step.as_str()).collect();
    assert_eq!(steps, vec!["identify", "attach", "power-cycle", "reboot", "extract"]);
}

#[test]
fn repeated_attacks_on_the_same_die_are_stable() {
    // The probe stays attached; a second power cycle retains again.
    let mut soc = devices::raspberry_pi_4(0xAAAA);
    soc.power_on_all();
    workloads::baremetal_nop_fill(&mut soc).unwrap();
    let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();

    let first = VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
    assert_eq!(first.image("core0.l1i.way0").unwrap().bits, truth);

    // Second cycle: probe already attached -> the attach step fails, but
    // a manual power cycle through the soc API still retains.
    let report = soc.power_cycle(voltboot_soc::PowerCycleSpec::quick()).unwrap();
    assert!(report.outcome.rail("VDD_CORE").unwrap().is_held());
    assert_eq!(soc.core(0).unwrap().l1i.way_image(0).unwrap(), truth);
}
