//! Cross-crate integration: the paper's core contrast — temperature-based
//! cold boot fails on on-chip SRAM while voltage-based Volt Boot is
//! error-free.

use voltboot::analysis;
use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot_armlite::program::builders;
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// Stages a victim and returns `(soc, d-cache way0 ground truth)`.
fn staged(seed: u64) -> (voltboot_soc::Soc, PackedBits) {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_caches(0);
    let p = builders::fill_bytes(0x10_0000, 0xC7, 16 * 1024);
    soc.run_program(0, &p, 0x8_0000, 50_000_000);
    let truth = soc.core(0).unwrap().l1d.way_image(0).unwrap();
    (soc, truth)
}

#[test]
fn retention_improves_monotonically_with_deeper_cold() {
    let mut last_error = 0.0f64;
    for celsius in [25.0f64, -40.0, -90.0, -110.0, -150.0] {
        let (mut soc, truth) = staged(0xC01D ^ celsius.to_bits());
        let outcome = ColdBootAttack::new(celsius, 20).execute(&mut soc).unwrap();
        let img = &outcome.image("core0.l1d.way0").unwrap().bits;
        let error = analysis::fractional_hamming(img, &truth);
        assert!(
            error <= last_error + 0.02 || last_error == 0.0,
            "colder must not be worse: {celsius} C -> {error} (prev {last_error})"
        );
        last_error = error;
    }
    // At -150 C / 20 ms the attack finally works decently...
    assert!(last_error < 0.2, "deep cryogenic retention: {last_error}");
}

#[test]
fn achievable_temperatures_never_retain() {
    // The paper's point: every temperature a device survives (>= -40 C)
    // gives ~50% error for any realistic off time.
    for celsius in [0.0f64, -5.0, -40.0] {
        let (mut soc, truth) = staged(0xC02D ^ celsius.to_bits());
        let outcome = ColdBootAttack::new(celsius, 5).execute(&mut soc).unwrap();
        let img = &outcome.image("core0.l1d.way0").unwrap().bits;
        let error = analysis::fractional_hamming(img, &truth);
        assert!((error - 0.5).abs() < 0.06, "{celsius} C: error {error}");
    }
}

#[test]
fn voltboot_is_exact_regardless_of_temperature() {
    // Volt Boot does not care about temperature: hold the rail and the
    // data survives at 25 C as well as in a freezer.
    for celsius in [25.0f64, -40.0] {
        let (mut soc, truth) = staged(0xB007 ^ celsius.to_bits());
        let outcome = VoltBootAttack::new("TP15")
            .cycle(voltboot_soc::PowerCycleSpec::cold_boot(celsius, 500))
            .extraction(Extraction::Caches { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let img = &outcome.image("core0.l1d.way0").unwrap().bits;
        assert_eq!(img, &truth, "{celsius} C: must be bit-exact");
    }
}

#[test]
fn off_duration_is_irrelevant_when_held() {
    // "The memory domain stays in this retention state indefinitely."
    let (mut soc, truth) = staged(0x1DEF);
    let outcome = VoltBootAttack::new("TP15")
        .cycle(voltboot_soc::PowerCycleSpec {
            off_duration: std::time::Duration::from_secs(24 * 3600),
            temperature: voltboot_sram::Temperature::ROOM,
        })
        .execute(&mut soc)
        .unwrap();
    assert_eq!(&outcome.image("core0.l1d.way0").unwrap().bits, &truth);
}

#[test]
fn longer_off_time_destroys_cold_boot_but_not_voltboot() {
    // At -110 C, 5 ms keeps most cells but 500 ms (a realistic manual
    // re-plug) keeps nothing — the "short retention time" obstacle.
    let (mut soc, truth) = staged(0x0FF1);
    let outcome = ColdBootAttack::new(-110.0, 5).execute(&mut soc).unwrap();
    let quick =
        analysis::fractional_hamming(&outcome.image("core0.l1d.way0").unwrap().bits, &truth);

    let (mut soc2, truth2) = staged(0x0FF2);
    let outcome2 = ColdBootAttack::new(-110.0, 500).execute(&mut soc2).unwrap();
    let slow =
        analysis::fractional_hamming(&outcome2.image("core0.l1d.way0").unwrap().bits, &truth2);

    // ~80% of cells survive (shared-domain drain included) -> ~10% error.
    assert!(quick < 0.15, "5 ms at -110 C keeps most data: {quick}");
    assert!((slow - 0.5).abs() < 0.06, "500 ms loses everything: {slow}");
}
