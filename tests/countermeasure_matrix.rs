//! Cross-crate integration: the §8 countermeasure matrix end to end.

use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::countermeasures::{mark_dcache_secure, Countermeasure};
use voltboot::error::AttackError;
use voltboot_armlite::program::builders;
use voltboot_soc::devices;

fn staged_with(cm: Countermeasure, seed: u64) -> voltboot_soc::Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    cm.apply(&mut soc);
    soc.enable_caches(0);
    let p = builders::fill_bytes(0x10_0000, 0xAA, 4 * 1024);
    soc.run_program(0, &p, 0x8_0000, 50_000_000);
    soc
}

fn aa_bytes_recovered(soc: &mut voltboot_soc::Soc) -> Result<usize, AttackError> {
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(soc)?;
    Ok(outcome
        .images_matching("core0.l1d")
        .map(|img| img.bits.to_bytes().iter().filter(|&&b| b == 0xAA).count())
        .sum())
}

#[test]
fn baseline_attack_recovers_the_pattern() {
    let mut soc = staged_with(Countermeasure::None, 0xC0);
    assert!(aa_bytes_recovered(&mut soc).unwrap() >= 4 * 1024);
}

#[test]
fn mbist_reset_defeats_extraction() {
    let mut soc = staged_with(Countermeasure::BootTimeMemoryReset, 0xC1);
    assert!(aa_bytes_recovered(&mut soc).unwrap() < 64);
}

#[test]
fn authenticated_boot_defeats_reboot_step() {
    let mut soc = staged_with(Countermeasure::MandatedAuthenticatedBoot, 0xC2);
    assert!(matches!(aa_bytes_recovered(&mut soc), Err(AttackError::BootDefeated { .. })));
}

#[test]
fn trustzone_blocks_secure_lines_only() {
    let mut soc = staged_with(Countermeasure::TrustZoneEnforcement, 0xC3);
    mark_dcache_secure(&mut soc, 0).unwrap();
    // The extraction hits a secure line and is denied.
    assert!(matches!(aa_bytes_recovered(&mut soc), Err(AttackError::ExtractionDenied { .. })));
}

#[test]
fn trustzone_without_secure_marking_changes_nothing() {
    // Enforcement is only as good as the NS bits: if the victim's lines
    // were filled from the non-secure world, the attacker reads them.
    let mut soc = devices::raspberry_pi_4(0xC4);
    soc.power_on_all();
    Countermeasure::TrustZoneEnforcement.apply(&mut soc);
    soc.core_mut(0).unwrap().security = voltboot_soc::cache::SecurityState::NonSecure;
    soc.enable_caches(0);
    let p = builders::fill_bytes(0x10_0000, 0xAA, 4 * 1024);
    soc.run_program(0, &p, 0x8_0000, 50_000_000);
    assert!(aa_bytes_recovered(&mut soc).unwrap() >= 4 * 1024);
}

#[test]
fn l2_reset_pin_does_not_protect_l1() {
    let mut soc = staged_with(Countermeasure::L2ResetPin, 0xC5);
    assert!(aa_bytes_recovered(&mut soc).unwrap() >= 4 * 1024);
}

#[test]
fn purge_handler_is_skipped_by_abrupt_disconnect() {
    let mut soc = staged_with(Countermeasure::PowerDownPurge, 0xC6);
    // No orderly shutdown happens: the attack cuts power abruptly.
    assert!(aa_bytes_recovered(&mut soc).unwrap() >= 4 * 1024);
}
