//! Cross-crate integration: boundary conditions and unusual-but-legal
//! uses of the public API.

use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot_pdn::Probe;
use voltboot_soc::{devices, PowerCycleSpec};
use voltboot_sram::{ArrayConfig, OffEvent, SramArray, Temperature};

#[test]
fn zero_length_sram_array_is_legal() {
    let mut s = SramArray::new(ArrayConfig::with_bytes("empty", 0), 1);
    let report = s.power_on().unwrap();
    assert_eq!(report.bits, 0);
    assert_eq!(report.retention_fraction(), 1.0);
    assert!(s.read_bytes(0, 0).is_empty());
}

#[test]
fn single_bit_array_behaves() {
    let mut s = SramArray::new(ArrayConfig::with_bits("one", 1), 2);
    s.power_on().unwrap();
    s.write_bit(0, true).unwrap();
    assert!(s.read_bit(0).unwrap());
    s.power_off(OffEvent::held(0.8)).unwrap();
    s.elapse(std::time::Duration::from_secs(1), Temperature::ROOM);
    s.power_on().unwrap();
    assert!(s.read_bit(0).unwrap());
}

#[test]
fn instantaneous_power_cycle_without_hold_still_loses_everything_warm() {
    // Zero off-time with no hold: the model treats any unheld interval
    // at the accumulated stress level; zero duration means zero stress,
    // so data survives — the limiting case of an infinitely fast glitch.
    let mut s = SramArray::new(ArrayConfig::with_bytes("g", 64), 3);
    s.power_on().unwrap();
    s.fill(0x77).unwrap();
    s.power_off(OffEvent::unpowered()).unwrap();
    // No elapse at all.
    let report = s.power_on().unwrap();
    assert_eq!(report.lost, 0, "a zero-length glitch keeps the charge");
}

#[test]
fn extraction_of_every_surface_in_one_session() {
    // All extraction variants back-to-back on one held device.
    let mut soc = devices::raspberry_pi_4(0xED6E);
    soc.power_on_all();
    voltboot::workloads::baremetal_nop_fill(&mut soc).unwrap();
    let outcome = VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
    assert!(!outcome.images.is_empty());
    // The probe is still attached; further reads need no new cycle.
    for images in [
        voltboot::attack::extract_caches(&soc, &[0, 1, 2, 3]).unwrap(),
        voltboot::attack::extract_registers(&soc, &[0, 1, 2, 3]).unwrap(),
        voltboot::attack::extract_tlbs(&soc, &[0, 1, 2, 3]).unwrap(),
        voltboot::attack::extract_btbs(&soc, &[0, 1, 2, 3]).unwrap(),
    ] {
        assert_eq!(images.len() % 4, 0);
        for img in images {
            assert!(!img.bits.is_empty(), "{}", img.source);
        }
    }
}

#[test]
fn very_long_hold_then_cold_boot_composition() {
    // Hold for a day, detach, then a warm unheld cycle: the first cycle
    // retains, the second loses — power events compose correctly.
    let mut soc = devices::raspberry_pi_4(0xED6F);
    soc.power_on_all();
    soc.enable_caches(0);
    let p = voltboot_armlite::program::builders::fill_bytes(0x10_0000, 0x5D, 4096);
    soc.run_program(0, &p, 0x8_0000, 10_000_000);
    let truth = soc.core(0).unwrap().l1d.way_image(0).unwrap();

    soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
    soc.power_cycle(PowerCycleSpec {
        off_duration: std::time::Duration::from_secs(86_400),
        temperature: Temperature::ROOM,
    })
    .unwrap();
    assert_eq!(soc.core(0).unwrap().l1d.way_image(0).unwrap(), truth);

    soc.network_mut().detach_probe("TP15").unwrap();
    soc.power_cycle(PowerCycleSpec::quick()).unwrap();
    assert_ne!(soc.core(0).unwrap().l1d.way_image(0).unwrap(), truth);
}

#[test]
fn minimum_and_maximum_catalog_seeds_work() {
    for seed in [0u64, u64::MAX] {
        let mut soc = devices::imx53_qsb(seed);
        soc.power_on_all();
        assert!(VoltBootAttack::new("SH13")
            .extraction(Extraction::IramJtag)
            .execute(&mut soc)
            .is_ok());
    }
}
