//! Cross-crate integration: the attack machinery fails loudly and
//! gracefully when preconditions are missing — no panics, typed errors.

use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::error::AttackError;
use voltboot_pdn::{PdnError, Probe};
use voltboot_soc::{devices, PowerCycleSpec, SocError};

#[test]
fn attacking_a_board_that_was_never_powered_fails_cleanly() {
    let mut soc = devices::raspberry_pi_4(0xF0);
    let err = VoltBootAttack::new("TP15").execute(&mut soc).unwrap_err();
    assert!(matches!(err, AttackError::Soc(SocError::NotPowered)));
}

#[test]
fn probing_an_unknown_pad_fails_cleanly() {
    let mut soc = devices::raspberry_pi_4(0xF1);
    soc.power_on_all();
    let err = VoltBootAttack::new("TP99").execute(&mut soc).unwrap_err();
    assert!(matches!(err, AttackError::Soc(SocError::Pdn(PdnError::UnknownProbePoint { .. }))));
}

#[test]
fn wrong_probe_setpoint_is_rejected_at_attach() {
    let mut soc = devices::raspberry_pi_4(0xF2);
    soc.power_on_all();
    // A probe hard-set to 3.3 V against the 0.8 V core pad.
    let err = VoltBootAttack::new("TP15")
        .probe(Probe::bench_supply(3.3, 3.0))
        .execute(&mut soc)
        .unwrap_err();
    assert!(matches!(err, AttackError::Soc(SocError::Pdn(PdnError::ProbeVoltageMismatch { .. }))));
}

#[test]
fn second_attack_with_probe_still_attached_fails_at_attach() {
    let mut soc = devices::raspberry_pi_4(0xF3);
    soc.power_on_all();
    VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
    let err = VoltBootAttack::new("TP15").execute(&mut soc).unwrap_err();
    assert!(matches!(err, AttackError::Soc(SocError::Pdn(PdnError::ProbeAlreadyAttached { .. }))));
    // Detaching recovers.
    soc.network_mut().detach_probe("TP15").unwrap();
    assert!(VoltBootAttack::new("TP15").execute(&mut soc).is_ok());
}

#[test]
fn tlb_extraction_on_a_missing_core_is_a_configuration_error() {
    let mut soc = devices::imx53_qsb(0xF4);
    soc.power_on_all();
    let err = VoltBootAttack::new("SH13")
        .extraction(Extraction::Tlbs { cores: vec![3] })
        .execute(&mut soc)
        .unwrap_err();
    assert!(matches!(err, AttackError::BadConfiguration { .. }));
}

#[test]
fn dram_dump_past_the_end_is_unmapped() {
    let mut soc = devices::raspberry_pi_4(0xF5);
    soc.power_on_all();
    let err = VoltBootAttack::new("TP15")
        .extraction(Extraction::DramRaw { addr: u64::MAX - 8, len: 64 })
        .execute(&mut soc)
        .unwrap_err();
    assert!(matches!(err, AttackError::Soc(SocError::Unmapped { .. })));
}

#[test]
fn power_cycle_during_held_state_keeps_soc_usable_after_errors() {
    // An error mid-flow must not leave the device in a broken state.
    let mut soc = devices::raspberry_pi_4(0xF6);
    soc.power_on_all();
    // Fail once at the pad.
    let _ = VoltBootAttack::new("TP99").execute(&mut soc);
    // The board still works: programs run, a proper attack succeeds.
    soc.enable_caches(0);
    let exit =
        soc.run_program(0, &voltboot_armlite::program::builders::nop_sled(16), 0x8_0000, 10_000);
    assert!(matches!(exit, voltboot_armlite::RunExit::Halted(0)));
    assert!(VoltBootAttack::new("TP15").execute(&mut soc).is_ok());
}

#[test]
fn double_main_disconnect_is_guarded() {
    let mut soc = devices::raspberry_pi_4(0xF7);
    soc.power_on_all();
    soc.network_mut().disconnect_main().unwrap();
    // A power cycle on an already-disconnected board surfaces the guard.
    let err = soc.power_cycle(PowerCycleSpec::quick()).unwrap_err();
    assert!(matches!(err, SocError::Pdn(PdnError::InvalidMainTransition { .. })));
}
