//! Cross-crate integration: reconstructing *what the victim was doing*
//! from the union of extraction surfaces — the paper's closing point
//! that Volt Boot turns a powered-off SoC into a complete forensic
//! snapshot.
//!
//! One attack yields: the victim's machine code (i-cache), its data
//! (d-cache), the addresses it touched (TLB), and the control flow it
//! took (BTB). This test stages a victim with all four footprints and
//! reconstructs each from the extracted images alone.

use voltboot::analysis;
use voltboot::attack::{btb_branches, tlb_pages, Extraction, VoltBootAttack};
use voltboot_soc::devices;

/// The victim: computes a "checksum" over a secret string at a known
/// address, with a loop (BTB footprint), data touches (TLB + d-cache
/// footprints), and code (i-cache footprint).
const VICTIM_ASM: &str = r#"
    // x1 -> secret at 0x555000, x2 = length, x3 = accumulator
    movz x1, #0x5000
    movk x1, #0x0055, lsl #16
    movz x2, #28
    movz x3, #0
sum:
    ldrb x4, [x1]
    add  x3, x3, x4
    add  x1, x1, #1
    sub  x2, x2, #1
    cbnz x2, sum
    // Store the checksum next to the secret.
    movz x5, #0x5100
    movk x5, #0x0055, lsl #16
    str  x3, [x5]
    hlt  #0
"#;

const SECRET: &[u8] = b"wallet-pin: 8421; owner: ada";

#[test]
fn one_attack_reconstructs_code_data_addresses_and_control_flow() {
    let mut soc = devices::raspberry_pi_4(0xF02E);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.dram_mut().write(0x55_5000, SECRET).unwrap();
    let program = voltboot_armlite::asm::assemble(VICTIM_ASM).unwrap();
    let exit = soc.run_program(0, &program, 0x8_0000, 1_000_000);
    assert!(matches!(exit, voltboot_armlite::RunExit::Halted(0)));

    // One attack, all surfaces.
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let tlb = voltboot::attack::extract_tlbs(&soc, &[0]).unwrap();
    let btb = voltboot::attack::extract_btbs(&soc, &[0]).unwrap();

    // 1. The secret data, from the d-cache, via a strings pass.
    let mut all_strings = Vec::new();
    for img in outcome.images_matching("core0.l1d") {
        all_strings.extend(analysis::printable_strings(&img.bits, 8).into_iter().map(|(_, s)| s));
    }
    assert!(
        all_strings.iter().any(|s| s.contains("wallet-pin: 8421")),
        "secret must be readable from the d-cache: {all_strings:?}"
    );

    // 2. The victim's code, from the i-cache, via disassembly: the
    //    extracted image must contain the victim's exact loop body.
    let mut found_loop = false;
    for img in outcome.images_matching("core0.l1i") {
        let listing = analysis::disassembly_listing(&img.bits, 0);
        if listing.contains("ldrb x4, [x1]")
            && listing.contains("add x3, x3, x4")
            && listing.contains("cbnz x2, #-4")
        {
            found_loop = true;
        }
    }
    assert!(found_loop, "the checksum loop must disassemble out of the i-cache");

    // 3. The address trace, from the TLB: code page and both data pages.
    let pages = tlb_pages(&tlb[0]);
    assert!(pages.contains(&0x80), "code page 0x80000: {pages:x?}");
    assert!(pages.contains(&0x555), "secret page 0x555000: {pages:x?}");

    // 4. The control flow, from the BTB: a backward branch inside the
    //    victim's code region (the checksum loop).
    let branches = btb_branches(&btb[0]);
    assert!(
        branches.iter().any(|&(pc, tgt)| pc > tgt && (0x8_0000..0x8_0100).contains(&tgt)),
        "the loop's backward branch must be in the BTB: {branches:x?}"
    );

    // 5. And the computed checksum, from the d-cache, at its address.
    let expected: u64 = SECRET.iter().map(|&b| b as u64).sum();
    let mut found_sum = false;
    for img in outcome.images_matching("core0.l1d") {
        if analysis::count_pattern(&img.bits, &expected.to_le_bytes()) > 0 {
            found_sum = true;
        }
    }
    assert!(found_sum, "the victim's computed checksum must be recoverable");
}
