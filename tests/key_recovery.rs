//! Cross-crate integration: on-chip crypto schemes vs the attack.

use voltboot::analysis;
use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot_crypto::aes::{Aes, AesKey};
use voltboot_crypto::case_exec::CaseEnclave;
use voltboot_crypto::tresor::TresorContext;
use voltboot_soc::devices;

#[test]
fn tresor_aes256_schedule_is_recoverable() {
    let key = AesKey::Aes256([0x42; 32]);
    let mut soc = devices::raspberry_pi_4(0xA256);
    soc.power_on_all();
    TresorContext::install(&mut soc, 0, &key).unwrap();

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let image = &outcome.image("core0.vregs").unwrap().bits;
    let found = analysis::find_key_schedules(image);
    assert!(
        found.iter().any(|(_, ks)| ks.original_key() == key),
        "AES-256 schedule must be findable in the register dump"
    );
}

#[test]
fn case_enclave_schedule_is_recoverable_from_cache_images() {
    let key = AesKey::Aes128(*b"locked-way-key!!");
    let mut soc = devices::raspberry_pi_4(0xCA5E);
    soc.power_on_all();
    CaseEnclave::install(&mut soc, 0, 0x9000, &key).unwrap();

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let mut found_key = false;
    for img in outcome.images_matching("core0.l1d") {
        for (_, ks) in analysis::find_key_schedules(&img.bits) {
            if ks.original_key() == key {
                found_key = true;
            }
        }
    }
    assert!(found_key, "the locked-way schedule must appear in a d-cache image");
}

#[test]
fn cold_boot_recovers_no_schedule_and_tolerant_search_does_not_help() {
    let key = AesKey::Aes128([0x24; 16]);
    let mut soc = devices::raspberry_pi_4(0xC0DE);
    soc.power_on_all();
    TresorContext::install(&mut soc, 0, &key).unwrap();

    let outcome = ColdBootAttack::new(-40.0, 5)
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let image = &outcome.image("core0.vregs").unwrap().bits;

    assert!(analysis::find_key_schedules(image).is_empty(), "exact scan must find nothing");
    // Even a very tolerant Halderman-style search cannot fix a bistable
    // SRAM wipe: the key words themselves are gone.
    let tolerant = analysis::find_key_schedules_tolerant(image, 4, 20);
    assert!(
        tolerant.iter().all(|(_, _, ks)| ks.original_key() != key),
        "tolerant search must not resurrect the key from random bits"
    );
}

#[test]
fn stolen_schedule_decrypts_real_ciphertext() {
    let key = AesKey::Aes128(*b"disk encryption!");
    let reference = Aes::new(&key);
    let ciphertext = reference.encrypt_block(b"sixteen byte blk");

    let mut soc = devices::raspberry_pi_4(0xD15C);
    soc.power_on_all();
    TresorContext::install(&mut soc, 0, &key).unwrap();
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();

    let image = &outcome.image("core0.vregs").unwrap().bits;
    let (_, schedule) = analysis::find_key_schedules(image).pop().expect("schedule found");
    let stolen = Aes::from_schedule(schedule);
    assert_eq!(&stolen.decrypt_block(&ciphertext), b"sixteen byte blk");
}

#[test]
fn zeroized_registers_yield_nothing() {
    // The defender's orderly path: zeroize before shutdown.
    let key = AesKey::Aes128([0x77; 16]);
    let mut soc = devices::raspberry_pi_4(0x2E20);
    soc.power_on_all();
    let ctx = TresorContext::install(&mut soc, 0, &key).unwrap();
    ctx.zeroize(&mut soc).unwrap();

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let image = &outcome.image("core0.vregs").unwrap().bits;
    // The schedule registers (v0..v10) are zero; the untouched rest of
    // the file still holds its SRAM power-up garbage, which is harmless.
    let schedule_bytes = image.bytes_at(0, 11 * 16);
    assert!(schedule_bytes.iter().all(|&b| b == 0), "schedule registers must be zero");
    assert!(analysis::find_key_schedules(image).is_empty());
}
