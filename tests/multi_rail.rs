//! Cross-crate integration: holding *multiple* rails at once.
//!
//! The paper holds one domain per attack. Nothing stops an attacker
//! with two probes: holding VDD_MEM as well keeps the shared L2's SRAM
//! alive across the cycle — but on the Broadcom parts the VideoCore
//! still clobbers L2 during boot, so the binding constraint there is the
//! boot path, not the physics. This test pins down both halves of that
//! statement.

use voltboot_pdn::{Probe, ProbePoint};
use voltboot_soc::{devices, BootSource, PowerCycleSpec};

/// Adds a (hypothetical) test pad on the memory rail; real boards expose
/// one near the PMIC just like TP15.
fn pi4_with_mem_pad(seed: u64) -> voltboot_soc::Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    // The device catalog builds the network; extend it with a second pad.
    *soc.network_mut() = soc.network().clone().with_probe_point(ProbePoint::new(
        "TP_MEM",
        "VDD_MEM",
        "memory-rail pad",
    ));
    soc
}

fn stage_l2_pattern(soc: &mut voltboot_soc::Soc) -> usize {
    soc.power_on_all();
    soc.enable_l2();
    soc.enable_caches(0);
    let p = voltboot_armlite::program::builders::fill_bytes(0x20_0000, 0x3C, 64 * 1024);
    soc.run_program(0, &p, 0x8_0000, 50_000_000);
    l2_pattern_runs(soc)
}

fn l2_pattern_runs(soc: &voltboot_soc::Soc) -> usize {
    let g = soc.l2().geometry();
    (0..g.ways)
        .map(|way| {
            soc.l2()
                .raw_way_bytes(way, 0, g.sets() * g.line_bytes)
                .unwrap()
                .chunks_exact(16)
                .filter(|c| c.iter().all(|&b| b == 0x3C))
                .count()
        })
        .sum()
}

#[test]
fn holding_both_rails_retains_l2_through_the_power_cycle() {
    let mut soc = pi4_with_mem_pad(0x2A11);
    let before = stage_l2_pattern(&mut soc);
    assert!(before > 1000, "L2 staged: {before} runs");

    soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
    soc.attach_probe("TP_MEM", Probe::bench_supply(1.1, 3.0)).unwrap();
    let report = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
    assert!(report.outcome.rail("VDD_CORE").unwrap().is_held());
    assert!(report.outcome.rail("VDD_MEM").unwrap().is_held());

    // Physics: the L2 SRAM retained everything across the cycle.
    assert_eq!(l2_pattern_runs(&soc), before, "held VDD_MEM must retain L2");
}

#[test]
fn videocore_boot_still_clobbers_the_retained_l2() {
    let mut soc = pi4_with_mem_pad(0x2A12);
    let before = stage_l2_pattern(&mut soc);
    soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
    soc.attach_probe("TP_MEM", Probe::bench_supply(1.1, 3.0)).unwrap();
    soc.power_cycle(PowerCycleSpec::quick()).unwrap();
    assert_eq!(l2_pattern_runs(&soc), before);

    // ...but the attacker still has to boot, and the VideoCore runs first.
    soc.boot(BootSource::ExternalMedia { image: vec![0; 4], entry: 0x1000, signed: false })
        .unwrap();
    assert_eq!(l2_pattern_runs(&soc), 0, "boot clobber is the binding constraint on L2");
}

#[test]
fn single_core_probe_loses_l2_as_in_the_paper() {
    let mut soc = pi4_with_mem_pad(0x2A13);
    let before = stage_l2_pattern(&mut soc);
    assert!(before > 1000);
    soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
    soc.power_cycle(PowerCycleSpec::quick()).unwrap();
    let after = l2_pattern_runs(&soc);
    assert!(after * 50 < before, "unheld VDD_MEM loses the L2: {before} -> {after}");
}
