//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use std::time::Duration;
use voltboot_crypto::aes::{Aes, AesKey};
use voltboot_pdn::{DisconnectTransient, Probe, Rail, RegulatorKind, SurgeProfile};
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, SramArray, Temperature};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Anything written to a held array comes back identical, for any
    /// data, any duration, any temperature.
    #[test]
    fn held_rail_is_lossless(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        hours in 1u64..10_000,
        celsius in -150.0f64..85.0,
    ) {
        let mut s = SramArray::new(ArrayConfig::with_bytes("p", data.len()), 0xBEEF);
        s.power_on().unwrap();
        s.write_bytes(0, &data);
        s.power_off(OffEvent::held(0.8)).unwrap();
        s.elapse(Duration::from_secs(hours * 3600), Temperature::from_celsius(celsius));
        let report = s.power_on().unwrap();
        prop_assert_eq!(report.lost, 0);
        prop_assert_eq!(s.read_bytes(0, data.len()), data);
    }

    /// Retention is monotone in hold voltage: a higher steady voltage
    /// never retains fewer cells.
    #[test]
    fn retention_monotone_in_voltage(seed in any::<u64>()) {
        let mut last = 0usize;
        for centivolts in [5u32, 15, 25, 35, 45, 60] {
            let v = centivolts as f64 / 100.0;
            let mut s = SramArray::new(ArrayConfig::with_bytes("p", 512), seed);
            s.power_on().unwrap();
            s.fill(0xA5).unwrap();
            s.power_off(OffEvent::held(v)).unwrap();
            s.elapse(Duration::from_millis(100), Temperature::ROOM);
            let retained = s.power_on().unwrap().retained;
            prop_assert!(retained >= last, "retention dropped from {} to {} at {} V", last, retained, v);
            last = retained;
        }
        // End points: 0.05 V keeps nothing, 0.60 V keeps everything.
        prop_assert_eq!(last, 512 * 8);
    }

    /// Retention is antitone in unpowered off-time.
    #[test]
    fn retention_antitone_in_off_time(seed in any::<u64>()) {
        let mut last = usize::MAX;
        for millis in [1u64, 10, 30, 100, 1000] {
            let mut s = SramArray::new(ArrayConfig::with_bytes("p", 512), seed);
            s.power_on().unwrap();
            s.fill(0xA5).unwrap();
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_millis(millis), Temperature::from_celsius(-110.0));
            let retained = s.power_on().unwrap().retained;
            prop_assert!(retained <= last, "retention grew from {} to {} at {} ms", last, retained, millis);
            last = retained;
        }
    }

    /// Fractional Hamming distance is a metric-like quantity: symmetric,
    /// zero on identity, and within [0, 1].
    #[test]
    fn hamming_axioms(a in proptest::collection::vec(any::<u8>(), 1..256), flips in 0usize..64) {
        let bits_a = PackedBits::from_bytes(&a);
        let mut bits_b = bits_a.clone();
        for k in 0..flips.min(bits_a.len()) {
            let i = (k * 2654435761) % bits_a.len();
            bits_b.set(i, !bits_b.get(i));
        }
        prop_assert_eq!(bits_a.fractional_hamming(&bits_a), 0.0);
        prop_assert_eq!(bits_a.hamming(&bits_b), bits_b.hamming(&bits_a));
        let f = bits_a.fractional_hamming(&bits_b);
        prop_assert!((0.0..=1.0).contains(&f));
        // Windowed sums equal the total.
        let windows = bits_a.windowed_hamming(&bits_b, 64);
        prop_assert_eq!(windows.iter().sum::<usize>(), bits_a.hamming(&bits_b));
    }

    /// AES decrypt ∘ encrypt is the identity for arbitrary keys/blocks,
    /// and corrupting the schedule breaks consistency.
    #[test]
    fn aes_roundtrip_and_schedule_consistency(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new(&AesKey::Aes128(key));
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        let schedule = aes.schedule();
        prop_assert!(schedule.is_consistent());
        let original = schedule.original_key();
        prop_assert_eq!(original.bytes(), &key[..]);
    }

    /// PDN droop is monotone in surge current and never negative.
    #[test]
    fn droop_monotone_in_surge(limit_deciamps in 1u32..60) {
        let probe = Probe::bench_supply(0.8, limit_deciamps as f64 / 10.0);
        let rail = Rail::new("r", 0.8, RegulatorKind::Buck);
        let mut last = f64::INFINITY;
        for surge in [0.1f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let t = DisconnectTransient::compute(
                &probe,
                &rail,
                &SurgeProfile { steady_current: 0.1, surge_current: surge, surge_duration: 20e-6 },
            );
            prop_assert!(t.min_voltage >= 0.0);
            prop_assert!(t.min_voltage <= last + 1e-12);
            last = t.min_voltage;
        }
    }

    /// Instruction encode/decode round-trips for arbitrary operands of
    /// representative instruction shapes.
    #[test]
    fn instruction_roundtrip(rd in 0u8..32, rn in 0u8..32, imm in 0u16..4096, off in -1000i32..1000) {
        use voltboot_armlite::insn::{Instr, Reg};
        let cases = [
            Instr::Movz { rd: Reg(rd), imm16: imm, hw: (rd % 4) },
            Instr::AddImm { rd: Reg(rd), rn: Reg(rn), imm12: imm },
            Instr::LdrX { rt: Reg(rd), rn: Reg(rn), offset: (imm % 4096 / 8) * 8 },
            Instr::B { offset: off },
            Instr::Cbnz { rt: Reg(rd), offset: off },
            Instr::Madd { rd: Reg(rd), rn: Reg(rn), rm: Reg(rd), ra: Reg(rn) },
            Instr::Ldp { rt1: Reg(rd), rt2: Reg(rn), rn: Reg(rd), offset: ((off % 64) * 8).clamp(-512, 504) as i16 },
            Instr::Tbz { rt: Reg(rd), bit: (imm % 64) as u8, offset: (off % 8000) as i16 },
        ];
        for instr in cases {
            prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
        }
    }

    /// Decoding is total and injective on the supported set: any 32-bit
    /// word either fails to decode or re-encodes to itself (no aliasing
    /// between instruction patterns). Never panics.
    #[test]
    fn decode_any_word_never_panics_and_reencodes(word in any::<u32>()) {
        use voltboot_armlite::insn::Instr;
        if let Ok(instr) = Instr::decode(word) {
            let re = instr.encode();
            // Unused fields of some encodings are don't-care on real
            // hardware; our decoder is strict, so re-encoding must
            // reproduce the word exactly for every accepted word.
            prop_assert_eq!(re, word, "{:?}", instr);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The cache access path never loses data: any sequence of writes is
    /// readable back (from cache or backing store) regardless of
    /// eviction pattern.
    #[test]
    fn cache_is_transparent_under_eviction(
        writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..40),
    ) {
        use voltboot_soc::devices;
        let mut soc = devices::raspberry_pi_4(77);
        soc.power_on_all();
        soc.enable_caches(0);
        // Conflict-heavy address pattern: line-aligned within set 0.
        let addr_of = |slot: u64| 0x10_0000 + slot * 0x800;
        let mut expected = std::collections::HashMap::new();
        for &(slot, value) in &writes {
            expected.insert(slot, value);
            let p = voltboot_armlite::Program::from_instrs(vec![
                voltboot_armlite::insn::Instr::Movz {
                    rd: voltboot_armlite::insn::Reg(0), imm16: value as u16, hw: 0 },
                voltboot_armlite::insn::Instr::Movz {
                    rd: voltboot_armlite::insn::Reg(1),
                    imm16: (addr_of(slot) & 0xFFFF) as u16, hw: 0 },
                voltboot_armlite::insn::Instr::Movk {
                    rd: voltboot_armlite::insn::Reg(1),
                    imm16: ((addr_of(slot) >> 16) & 0xFFFF) as u16, hw: 1 },
                voltboot_armlite::insn::Instr::Strb {
                    rt: voltboot_armlite::insn::Reg(0),
                    rn: voltboot_armlite::insn::Reg(1), offset: 0 },
                voltboot_armlite::insn::Instr::Ldrb {
                    rt: voltboot_armlite::insn::Reg(2),
                    rn: voltboot_armlite::insn::Reg(1), offset: 0 },
                voltboot_armlite::insn::Instr::Hlt { imm16: 0 },
            ]);
            let exit = soc.run_program(0, &p, 0x8_0000, 10_000);
            prop_assert_eq!(exit, voltboot_armlite::RunExit::Halted(0));
            prop_assert_eq!(soc.core(0).unwrap().cpu.x(2), value as u64);
        }
        // Read everything back through a fresh program.
        for (&slot, &value) in &expected {
            let p = voltboot_armlite::Program::from_instrs(vec![
                voltboot_armlite::insn::Instr::Movz {
                    rd: voltboot_armlite::insn::Reg(1),
                    imm16: (addr_of(slot) & 0xFFFF) as u16, hw: 0 },
                voltboot_armlite::insn::Instr::Movk {
                    rd: voltboot_armlite::insn::Reg(1),
                    imm16: ((addr_of(slot) >> 16) & 0xFFFF) as u16, hw: 1 },
                voltboot_armlite::insn::Instr::Ldrb {
                    rt: voltboot_armlite::insn::Reg(2),
                    rn: voltboot_armlite::insn::Reg(1), offset: 0 },
                voltboot_armlite::insn::Instr::Hlt { imm16: 0 },
            ]);
            soc.run_program(0, &p, 0x8_0000, 10_000);
            prop_assert_eq!(soc.core(0).unwrap().cpu.x(2), value as u64, "slot {}", slot);
        }
    }
}
