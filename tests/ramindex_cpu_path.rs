//! Cross-crate integration: the extraction software's actual CPU path.
//!
//! The host-side extraction helpers drive `Soc::ramindex` directly; this
//! test instead runs the paper's §6.1 instruction sequence on the
//! simulated core — `SYS #0,c15,c4,#0,Xt` (RAMINDEX), `DSB SY`, `ISB`,
//! then `MRS` reads of the data-output registers — proving the modelled
//! barrier discipline and EL gating end to end.

use voltboot_armlite::program::builders::ramindex_read;
use voltboot_armlite::{ExceptionLevel, RunExit};
use voltboot_soc::debug::RamId;
use voltboot_soc::devices;

#[test]
fn extraction_program_reads_the_dcache_through_cp15() {
    let mut soc = devices::raspberry_pi_4(0xE13);
    soc.power_on_all();
    soc.enable_caches(0);
    // Victim data: 0xAB line at address 0 -> set 0 of the d-cache.
    let fill = voltboot_armlite::program::builders::fill_bytes(0x0, 0xAB, 64);
    assert_eq!(soc.run_program(0, &fill, 0x8_0000, 1_000_000), RunExit::Halted(0));

    // Find which way took the line, using the host debug path as oracle.
    let way = (0..2u8)
        .find(|&w| soc.ramindex(0, RamId::L1DData, w, 0, true).unwrap()[0] == 0xABAB_ABAB_ABAB_ABAB)
        .expect("line cached in some way");

    // The attacker's extraction program, run on the core at EL3.
    let program = ramindex_read(RamId::L1DData.code(), way, 0);
    assert_eq!(soc.run_program(0, &program, 0x8_1000, 10_000), RunExit::Halted(0));
    let c = soc.core(0).unwrap();
    assert_eq!(c.cpu.x(10), 0xABAB_ABAB_ABAB_ABAB, "first data register");
    assert_eq!(c.cpu.x(11), 0xABAB_ABAB_ABAB_ABAB, "second data register");
}

#[test]
fn looped_extraction_program_dumps_a_whole_way_to_dram() {
    use voltboot_armlite::program::builders::ramindex_dump_way;

    let mut soc = devices::raspberry_pi_4(0xE16);
    soc.power_on_all();
    soc.enable_caches(0);
    // Victim: fill 4 KB so a stretch of the d-cache holds 0xC9 lines.
    let fill = voltboot_armlite::program::builders::fill_bytes(0x0, 0xC9, 4096);
    assert_eq!(soc.run_program(0, &fill, 0x8_0000, 10_000_000), RunExit::Halted(0));

    // Host-side reference dump of way 0 (the oracle).
    let reference = soc.core(0).unwrap().l1d.way_image(0).unwrap().to_bytes();

    // Paper §6.1 step (A): the extraction image must avoid contaminating
    // the retained SRAM — it runs with the caches disabled, which is
    // also their state after the real attack's power cycle. Stores then
    // go straight to DRAM; the retained d-cache contents are untouched.
    soc.core_mut(0).unwrap().l1d.set_enabled(false);
    soc.core_mut(0).unwrap().l1i.set_enabled(false);

    // The attacker's looped extraction program: every beat of way 0,
    // stored to DRAM at 0x20_0000.
    let geometry = soc.core(0).unwrap().l1d.geometry();
    let beats = (geometry.sets() * geometry.line_bytes / 32) as u32;
    let program = ramindex_dump_way(RamId::L1DData.code(), 0, beats, 0x20_0000);
    let exit = soc.run_program(0, &program, 0x8_4000, 10_000_000);
    assert_eq!(exit, RunExit::Halted(0));

    // The program's DRAM dump is the oracle, bit for bit.
    let dumped = soc.dram().read(0x20_0000, reference.len()).unwrap();
    assert_eq!(dumped, reference, "CPU-path dump must equal the host oracle");
    // And the victim pattern is present in the dump.
    let c9 = dumped.iter().filter(|&&b| b == 0xC9).count();
    assert!(c9 >= 3500, "victim bytes recovered through the CPU path: {c9}");
}

#[test]
fn ramindex_at_el1_faults() {
    let mut soc = devices::raspberry_pi_4(0xE14);
    soc.power_on_all();
    let program = ramindex_read(RamId::L1DData.code(), 0, 0);
    soc.dram_mut().write(0x8_0000, &program.bytes()).unwrap();
    soc.core_mut(0).unwrap().cpu.set_pc(0x8_0000);
    soc.core_mut(0).unwrap().cpu.set_el(ExceptionLevel::El1);
    let exit = soc.run_core(0, 10_000);
    assert!(
        matches!(
            exit,
            RunExit::Fault(voltboot_armlite::BusFault::PermissionDenied { required_el: 3 }, _)
        ),
        "RAMINDEX below EL3 must fault: {exit:?}"
    );
}

#[test]
fn skipping_barriers_reads_poison() {
    use voltboot_armlite::insn::{Instr, Reg};
    let mut soc = devices::raspberry_pi_4(0xE15);
    soc.power_on_all();
    let request =
        voltboot_armlite::RamIndexRequest { ramid: RamId::L1DData.code(), way: 0, index: 0 }.pack();
    let program = voltboot_armlite::Program::from_instrs(vec![
        Instr::Movz { rd: Reg::x(9), imm16: (request & 0xFFFF) as u16, hw: 0 },
        Instr::Movk { rd: Reg::x(9), imm16: ((request >> 16) & 0xFFFF) as u16, hw: 1 },
        Instr::Movk { rd: Reg::x(9), imm16: ((request >> 32) & 0xFFFF) as u16, hw: 2 },
        Instr::RamIndex { rt: Reg::x(9) },
        // DSB SY / ISB deliberately omitted.
        Instr::MrsRamData { rt: Reg::x(10), n: 0 },
        Instr::Hlt { imm16: 0 },
    ]);
    assert_eq!(soc.run_program(0, &program, 0x8_0000, 10_000), RunExit::Halted(0));
    assert_eq!(
        soc.core(0).unwrap().cpu.x(10),
        0xDEAD_DEAD_DEAD_DEAD,
        "missing barriers must yield stale/poison data"
    );
}

#[test]
fn assembled_extraction_source_matches_builder() {
    // The same routine written in assembly text assembles to the same
    // machine code the builder emits.
    let asm = voltboot_armlite::asm::assemble(
        r#"
        movz x9, #0x0000
        movk x9, #0x0900, lsl #16   // ramid 0x09 at bits 24..32
        movk x9, #0x0000, lsl #32
        ramindex x9
        dsb sy
        isb
        mrsram x10, #0
        mrsram x11, #1
        mrsram x12, #2
        mrsram x13, #3
        hlt #0
    "#,
    )
    .unwrap();
    let built = ramindex_read(0x09, 0, 0);
    assert_eq!(asm.words(), built.words());
}
