//! Cross-crate integration: result records are value types — cloneable,
//! comparable, and rebuildable from their byte views — so experiments
//! can be archived and compared across runs. (All records also derive
//! serde traits; no serializer crate is in the offline dependency set,
//! so the byte-level round-trips below stand in for wire formats.)

use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot_soc::devices;

#[test]
fn attack_outcomes_are_value_types() {
    let mut soc = devices::raspberry_pi_4(0x5EDE);
    soc.power_on_all();
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Registers { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    let cloned = outcome.clone();
    assert_eq!(cloned, outcome);
    assert_eq!(cloned.images.len(), outcome.images.len());
}

#[test]
fn packed_bits_rebuild_from_their_byte_view() {
    let mut soc = devices::raspberry_pi_4(0x5EDF);
    soc.power_on_all();
    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .unwrap();
    for image in &outcome.images {
        let rebuilt = voltboot_sram::PackedBits::from_bytes(&image.bits.to_bytes());
        assert_eq!(&rebuilt, &image.bits, "{}", image.source);
    }
}

#[test]
fn experiment_records_are_cloneable_and_comparable() {
    let t1 = voltboot::experiments::table1::Table1Row {
        celsius: -40.0,
        mean_error: 0.5,
        per_core_error: vec![0.5; 4],
        hd_vs_startup: 0.1,
    };
    assert_eq!(t1.clone(), t1);

    let cell = voltboot::experiments::table4::Table4Cell {
        array_kb: 32,
        core: 0,
        w0: 1900.0,
        w1: 1800.0,
        union: 3700.0,
        extracted_fraction: 0.903,
    };
    assert_eq!(cell.clone(), cell);
}
