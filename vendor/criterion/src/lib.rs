//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion`, benchmark
//! groups, `Bencher::iter`, `BenchmarkId`, `Throughput`) with a plain
//! wall-clock median timer. There is no statistical analysis, HTML
//! report, or baseline comparison — each benchmark prints one
//! `bench <name> ... <median>` line, which is what the CI bench jobs
//! grep for. Benchmarks still exercise the exact closures they would
//! under real criterion, so they remain useful smoke tests and coarse
//! timers in a hermetic build environment with no registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Sets how many timed samples to aim for.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for `criterion_group!` compatibility; command-line
    /// parsing is not implemented, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, self.measurement_time, None, |b| f(b));
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.to_string(), self.sample_size, self.measurement_time, None, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// No-op; real criterion prints its closing summary here.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the work per iteration so throughput can be reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, self.throughput, |b| f(b));
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Hands the closure under measurement to the timer.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, collecting up to the configured number of samples
    /// within the measurement-time budget (always at least one).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run (fills caches, triggers lazy init).
        std::hint::black_box(f());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.target_samples || started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b =
        Bencher { samples: Vec::new(), budget: measurement_time, target_samples: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name} ... no samples (closure never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let gib_s = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            println!("bench {name} ... {median:?} ({gib_s:.3} GiB/s, {} samples)", b.samples.len());
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let elem_s = n as f64 / median.as_secs_f64();
            println!(
                "bench {name} ... {median:?} ({elem_s:.0} elem/s, {} samples)",
                b.samples.len()
            );
        }
        _ => println!("bench {name} ... {median:?} ({} samples)", b.samples.len()),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
