//! `any::<T>()` and the `Arbitrary` trait.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards the edges: small values, extremes, and
                // all-ones words surface boundary bugs that a uniform
                // draw over 2^64 values practically never hits.
                match rng.below(8) {
                    0 => (rng.below(16) as u64) as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns cover the whole domain including NaN,
        // infinities, and subnormals; mixing in unit-range and integral
        // values keeps "ordinary" floats common.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => rng.unit_f64(),
            2 => (rng.next_u64() as i64 >> 32) as f64,
            _ => rng.unit_f64() * 1e6 - 5e5,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}
