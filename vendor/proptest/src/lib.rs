//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_assume!`, `prop_oneof!`, `any`,
//! ranges, `Just`, tuples, `collection::vec`, `prop_map` / `prop_filter`
//! / `prop_recursive`, and `ProptestConfig` — on top of a small
//! deterministic RNG. There is no shrinking: a failing case panics with
//! the case number and the per-test seed, which is enough to reproduce
//! it (generation is a pure function of the test name and case index).

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

mod macros;

/// The prelude every property test imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
