//! The user-facing macros: `proptest!`, `prop_assert*!`, `prop_assume!`,
//! and `prop_oneof!`.

/// Declares property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_proptest(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let mut __proptest_body = || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __proptest_body()
                },
            );
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
