//! Deterministic RNG backing strategy generation.

/// SplitMix64 generator. Every property test derives its own stream from
/// the test's module path and name, so runs are reproducible and tests
/// are independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style reduction; the slight modulo bias of a plain `%`
        // would also have been fine for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, bound)` over the 128-bit domain (used for
    /// integer ranges that span more than `u64::MAX` values).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            self.below(bound as u64) as u128
        } else {
            // bound > 2^64 only happens for full-domain 128-bit ranges,
            // which this workspace never uses; modulo is fine.
            (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
