//! The `Strategy` trait and its combinators.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values. Unlike real proptest there is no value
/// tree and no shrinking: a strategy is just a pure function of the RNG
/// state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `f`, retrying with fresh ones.
    fn prop_filter<R, F>(self, _whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a bounded recursive strategy: `recurse` wraps the strategy
    /// built so far, and leaves are mixed back in at every level so
    /// generation always terminates. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are
    /// accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new_weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values");
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (the `prop_oneof!` backend).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the exclusive endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
