//! String strategies.
//!
//! Real proptest interprets a `&str` strategy as a regular expression.
//! This stand-in ignores the pattern and generates short strings over a
//! deliberately nasty alphabet (quotes, backslashes, control characters,
//! multi-byte code points) — a superset of what the workspace's patterns
//! (`".*"`, `".{0,12}"`) ask for, and exactly the content its JSON
//! escaping tests want to see.

use crate::rng::TestRng;
use crate::strategy::Strategy;

const ALPHABET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ':', '/', '"', '\\', '\n', '\t',
    '\r', '\u{0}', '\u{1b}', 'é', 'λ', '\u{7f}', '\u{2028}', '🦀',
];

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(13) as usize;
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
    }
}
