//! The case runner behind the `proptest!` macro.

use crate::rng::TestRng;

/// Per-test configuration. Only `cases` is meaningful in this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case (and test) fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// What the body of a `proptest!` case returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `case` until `config.cases` cases have been accepted, panicking
/// on the first failure. Generation is deterministic per `test_name`.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(test_name);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64).saturating_mul(20).max(1000);
    while accepted < config.cases {
        // Snapshot the RNG so a failure report pins down the exact case.
        let snapshot = rng.clone();
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: prop_assume! rejected {rejected} cases \
                     (accepted only {accepted}/{})",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: case {accepted} failed: {msg}\n\
                     (deterministic repro: rng state {:#x})",
                    snapshot.clone().next_u64()
                );
            }
        }
    }
}
