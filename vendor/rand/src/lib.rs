//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` with `SeedableRng::seed_from_u64` and
//! `Rng::random_range` over `u64` ranges — the only rand API this
//! workspace touches (the OS-noise model in `voltboot`). The generator
//! is SplitMix64, not ChaCha12, so the concrete noise streams differ
//! from upstream rand; every consumer treats them as opaque
//! deterministic noise, and determinism (same seed, same stream) is
//! fully preserved.

use std::ops::Range;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (modulo-bias-free).
    fn random_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic seeded generator (SplitMix64 in this stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
