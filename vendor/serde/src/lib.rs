//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde at runtime (all JSON in the repository
//! is hand-rolled, see `voltboot-telemetry`). This stub keeps the derive
//! attributes compiling in a hermetic build environment with no registry
//! access: the traits are markers and the derive macros expand to
//! nothing, while still accepting the inert `#[serde(...)]` field and
//! container attributes.

/// Marker counterpart of `serde::Serialize`.
///
/// The real trait's methods are never called anywhere in this workspace,
/// so the stub declares none.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
