//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The derives expand to nothing: the workspace only uses serde as an
//! annotation layer (no runtime serialization goes through it), so an
//! empty expansion keeps every `#[derive(Serialize, Deserialize)]` and
//! inert `#[serde(...)]` attribute compiling without the real
//! `serde_derive` (and its `syn`/`quote` dependency tree).

use proc_macro::TokenStream;

/// Accepts the input item and the inert `#[serde(...)]` helper
/// attributes, and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// See [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
